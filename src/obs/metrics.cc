#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <map>

#include "common/mutex.h"

namespace densest::obs {

namespace metrics_internal {

size_t ThisThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % Counter::kStripes;
  return stripe;
}

namespace {

[[noreturn]] void UnregisteredName(const char* kind, std::string_view name) {
  // Reaching this means an instrumentation site bypassed the registry
  // contract that tools/lint.py enforces statically; there is no sane
  // fallback (a silently minted series defeats the single-source list).
  std::fprintf(stderr,
               "densest::obs: %s \"%.*s\" is not in obs/metric_names.h "
               "(and lacks the reserved \"t.\" test prefix)\n",
               kind, static_cast<int>(name.size()), name.data());
  std::abort();
}

template <size_t N>
ptrdiff_t IndexOf(const std::string_view (&names)[N], std::string_view name) {
  const std::string_view* it = std::lower_bound(names, names + N, name);
  if (it == names + N || *it != name) return -1;
  return it - names;
}

}  // namespace

}  // namespace metrics_internal

size_t Histogram::BucketIndex(double value) {
  // Bucket i spans (2^(i-1), 2^i]; bucket 0 is [0, 1]. ceil(log2) via
  // repeated doubling would be exact but slow; std::ilogb plus the
  // power-check gives the same answer in a few instructions.
  if (value <= 1.0) return 0;
  const int e = std::ilogb(value);  // floor(log2(value)), value > 1
  const size_t idx =
      static_cast<size_t>(e) + (std::ldexp(1.0, e) == value ? 0 : 1);
  return std::min(idx, kBuckets - 1);
}

double Histogram::BucketBound(size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i));
}

double HistogramSample::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::min<uint64_t>(
      count - 1, static_cast<uint64_t>(q * static_cast<double>(count)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) {
      // Clip the bucket bound by the observed extrema so tiny samples
      // report sane values (a single 3us observation reports 3us, not 4).
      return std::clamp(Histogram::BucketBound(i), min, max);
    }
  }
  return max;
}

/// "t."-prefixed scratch metrics, minted on first use. A plain map under
/// a mutex: test metrics are never on a measured hot path.
struct MetricsRegistry::TestSlots {
  Mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
      DENSEST_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges
      DENSEST_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
      DENSEST_GUARDED_BY(mu);
};

MetricsRegistry::MetricsRegistry() {
  counters_.reserve(std::size(kCounterNames));
  for (std::string_view name : kCounterNames) {
    counters_.push_back(std::make_unique<Counter>(std::string(name)));
  }
  gauges_.reserve(std::size(kGaugeNames));
  for (std::string_view name : kGaugeNames) {
    gauges_.push_back(std::make_unique<Gauge>(std::string(name)));
  }
  histograms_.reserve(std::size(kHistogramNames));
  for (std::string_view name : kHistogramNames) {
    histograms_.push_back(std::make_unique<Histogram>(std::string(name)));
  }
  test_slots_ = new TestSlots();  // lint:allow(naked-new) — leaked singleton
}

MetricsRegistry& MetricsRegistry::Get() {
  // Leaked like Failpoints: metric handles are touched from detached-ish
  // contexts (thread pools draining at exit), so the registry must outlive
  // every static destructor.
  static MetricsRegistry* instance =
      new MetricsRegistry();  // lint:allow(naked-new) — leaked singleton
  return *instance;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  const ptrdiff_t i = metrics_internal::IndexOf(kCounterNames, name);
  if (i >= 0) return *counters_[static_cast<size_t>(i)];
  if (!IsTestMetricName(name)) metrics_internal::UnregisteredName("counter", name);
  MutexLock lock(test_slots_->mu);
  std::unique_ptr<Counter>& slot = test_slots_->counters[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>(std::string(name));
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  const ptrdiff_t i = metrics_internal::IndexOf(kGaugeNames, name);
  if (i >= 0) return *gauges_[static_cast<size_t>(i)];
  if (!IsTestMetricName(name)) metrics_internal::UnregisteredName("gauge", name);
  MutexLock lock(test_slots_->mu);
  std::unique_ptr<Gauge>& slot = test_slots_->gauges[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>(std::string(name));
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  const ptrdiff_t i = metrics_internal::IndexOf(kHistogramNames, name);
  if (i >= 0) return *histograms_[static_cast<size_t>(i)];
  if (!IsTestMetricName(name)) {
    metrics_internal::UnregisteredName("histogram", name);
  }
  MutexLock lock(test_slots_->mu);
  std::unique_ptr<Histogram>& slot =
      test_slots_->histograms[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::string(name));
  return *slot;
}

namespace {

CounterSample SampleOf(const Counter& c) {
  return CounterSample{c.name(), c.Value()};
}

GaugeSample SampleOf(const Gauge& g) { return GaugeSample{g.name(), g.Value()}; }

HistogramSample SampleOf(const Histogram& h) {
  HistogramSample s;
  s.name = h.name();
  // Count from the buckets, not the count field: under concurrent
  // Observe() the two can differ transiently, and the exporters promise
  // sum(buckets) == count in every exposition.
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    s.buckets[i] = h.BucketCount(i);
    s.count += s.buckets[i];
  }
  s.sum = h.Sum();
  const double mn = h.MinSeen();
  const double mx = h.MaxSeen();
  s.min = std::isfinite(mn) ? mn : 0;
  s.max = std::isfinite(mx) ? mx : 0;
  return s;
}

}  // namespace

MetricsSnapshot MetricsRegistry::Collect() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& c : counters_) snap.counters.push_back(SampleOf(*c));
  snap.gauges.reserve(gauges_.size());
  for (const auto& g : gauges_) snap.gauges.push_back(SampleOf(*g));
  snap.histograms.reserve(histograms_.size());
  for (const auto& h : histograms_) snap.histograms.push_back(SampleOf(*h));
  MutexLock lock(test_slots_->mu);
  for (const auto& [name, c] : test_slots_->counters) {
    snap.counters.push_back(SampleOf(*c));
  }
  for (const auto& [name, g] : test_slots_->gauges) {
    snap.gauges.push_back(SampleOf(*g));
  }
  for (const auto& [name, h] : test_slots_->histograms) {
    snap.histograms.push_back(SampleOf(*h));
  }
  return snap;
}

void MetricsRegistry::ResetForTest() {
  for (const auto& c : counters_) {
    for (Counter::Stripe& s : c->stripes_) {
      s.v.store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& g : gauges_) g->v_.store(0, std::memory_order_relaxed);
  for (const auto& h : histograms_) {
    for (std::atomic<uint64_t>& b : h->buckets_) {
      b.store(0, std::memory_order_relaxed);
    }
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0, std::memory_order_relaxed);
    h->min_.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
    h->max_.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
  }
  MutexLock lock(test_slots_->mu);
  test_slots_->counters.clear();
  test_slots_->gauges.clear();
  test_slots_->histograms.clear();
  set_enabled(true);
}

}  // namespace densest::obs
