// Copyright 2026 The densest Authors.
// Single-source registry of every metric and trace-span name in the tree,
// in the style of common/failpoint_names.h: names follow the same
// `subsystem.operation` grammar, each instrumentation site uses a literal
// that must appear here, and tools/lint.py cross-checks both directions
// (an unregistered site and a dead registry entry are both CI failures).
//
// Why a registry instead of open-ended strings: the exporter pre-creates
// one slot per registered name, so text exposition always contains the
// full catalogue (a scrape can tell "zero" from "misspelled"), and a typo
// at an instrumentation site is a lint error, not a silently separate
// time series.
//
// Grammar: `subsystem.operation`, both parts [a-z0-9_]+. The `t.` prefix
// is reserved for tests (never listed here; the lint check and the
// runtime lookup both admit it).

#ifndef DENSEST_OBS_METRIC_NAMES_H_
#define DENSEST_OBS_METRIC_NAMES_H_

#include <string_view>

namespace densest::obs {

/// Counter metrics: monotone event tallies (sharded relaxed atomics).
/// Sorted; MetricsRegistry binary-searches this array.
inline constexpr std::string_view kCounterNames[] = {
    // Chunk rounds the fused sweep engine pulled through its shared scan.
    "core.fused_rounds",
    // Shard-round dispatches by PassEngine (one per <= slots*16k edges).
    "core.pass_rounds",
    // Shard tasks executed inside those rounds (fan-out width signal).
    "core.pass_shards",
    // Full streaming passes started (undirected, directed, and buffer).
    "core.passes",
    // Deletions applied by DynamicDensest.
    "dynamic.deletes",
    // Updates rejected by the adjacency (duplicate insert / absent delete).
    "dynamic.ignored",
    // Edge insertions applied by DynamicDensest.
    "dynamic.inserts",
    // Node promotions/demotions across degree-ladder levels.
    "dynamic.level_moves",
    // Fallback batch recomputes that completed.
    "dynamic.recomputes",
    // Recomputes cancelled by the overload deadline.
    "dynamic.recomputes_cancelled",
    // Successful snapshot restores (crash recovery).
    "dynamic.snapshot_restores",
    // Crash-recovery snapshots that failed to write (degraded gracefully).
    "dynamic.snapshots_failed",
    // Crash-recovery snapshots written.
    "dynamic.snapshots_written",
    // Queries answered from the widened stale band while degraded.
    "dynamic.stale_answers_served",
    // Certified-window slides (trims and recompute-driven moves).
    "dynamic.window_moves",
    // Failpoint evaluations that fired an armed action.
    "io.failpoint_trips",
    // Transient-fault retries taken by the IO retry loops.
    "io.retries",
    // Retry loops that gave up after the attempt budget.
    "io.retries_exhausted",
    // Retry loops that healed (succeeded after >= 1 retry).
    "io.retries_healed",
    // MapReduce jobs completed.
    "mr.jobs",
    // Map input chunks mapped (and combined) by the MR driver.
    "mr.map_chunks",
    // Reducer groups reduced across all partitions.
    "mr.reduce_groups",
    // Records that reached the shuffle (post-combine).
    "mr.shuffle_records",
    // Bytes the shuffle spilled to disk under its budget.
    "mr.spill_bytes",
    // Query batches completed OK by the reader pool.
    "serve.batches_served",
    // Batches that hit their deadline / cancel token.
    "serve.expired",
    // Batches failed at dequeue (armed serve.dequeue seam).
    "serve.failed",
    // Epoch publications into the answer plane.
    "serve.publications",
    // Individual queries answered inside served batches.
    "serve.queries_served",
    // Batches shed at submit (queue full or armed serve.enqueue seam).
    "serve.shed",
    // `stats` queries served (in-process scrapes of this catalogue).
    "serve.stats_queries",
};

/// Gauge metrics: last-written values (single relaxed atomic each).
inline constexpr std::string_view kGaugeNames[] = {
    // Density of the engine's most recently served answer.
    "dynamic.density",
    // Microseconds since the plane's last publication, sampled at serve.
    "serve.answer_age_us",
    // The plane's current publication epoch.
    "serve.answer_epoch",
    // Batches queued and not yet picked up by a reader.
    "serve.queue_depth",
};

/// Histogram metrics: log2-bucketed distributions of non-negative values
/// (all in microseconds today).
inline constexpr std::string_view kHistogramNames[] = {
    // Engine Query() latency sampled on the replay's query cadence.
    "dynamic.query_latency_us",
    // Per-batch serving latency (enqueue to completion).
    "serve.batch_latency_us",
    // Writer-side cost of one Publish (query + witness walk + seqlock).
    "serve.publish_latency_us",
};

/// Trace-span names for DENSEST_TRACE_SPAN(...) sites. Same grammar and
/// the same both-direction lint contract as the metric names.
inline constexpr std::string_view kTraceSpanNames[] = {
    // One chunk round of the fused multi-run scan.
    "core.fused_round",
    // One directed streaming pass (S/T degree accumulation).
    "core.pass_directed",
    // One shard-round dispatch (fan-out unit) inside a pass.
    "core.pass_round",
    // One undirected streaming pass.
    "core.pass_undirected",
    // One ApplyBatch run on the dynamic engine (writer thread).
    "dynamic.apply_batch",
    // One band-verification checkpoint (exact or batch recompute).
    "dynamic.checkpoint",
    // One epoch publication (Query + DensestNodes + plane write).
    "dynamic.publish",
    // One fallback batch recompute over the frozen live edge set.
    "dynamic.recompute",
    // One snapshot restore attempt.
    "dynamic.snapshot_read",
    // One crash-recovery snapshot write.
    "dynamic.snapshot_write",
    // The map phase of one MapReduce job.
    "mr.map_phase",
    // The reduce phase of one MapReduce job.
    "mr.reduce_phase",
    // One query batch answered off the plane by a reader thread.
    "serve.batch",
};

/// True when `name` follows the `subsystem.operation` grammar shared with
/// failpoint names: [a-z0-9_]+ '.' [a-z0-9_]+.
constexpr bool MetricNameWellFormed(std::string_view name) {
  auto word = [](std::string_view s) {
    if (s.empty()) return false;
    for (char c : s) {
      const bool ok =
          (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
      if (!ok) return false;
    }
    return true;
  };
  const size_t dot = name.find('.');
  if (dot == std::string_view::npos) return false;
  if (name.find('.', dot + 1) != std::string_view::npos) return false;
  return word(name.substr(0, dot)) && word(name.substr(dot + 1));
}

namespace metric_names_internal {

template <size_t N>
constexpr bool Contains(const std::string_view (&names)[N],
                        std::string_view name) {
  for (std::string_view n : names) {
    if (n == name) return true;
  }
  return false;
}

template <size_t N>
constexpr bool AllWellFormed(const std::string_view (&names)[N]) {
  for (std::string_view n : names) {
    if (!MetricNameWellFormed(n)) return false;
  }
  return true;
}

template <size_t N>
constexpr bool StrictlySorted(const std::string_view (&names)[N]) {
  for (size_t i = 1; i < N; ++i) {
    if (!(names[i - 1] < names[i])) return false;
  }
  return true;
}

}  // namespace metric_names_internal

static_assert(metric_names_internal::AllWellFormed(kCounterNames));
static_assert(metric_names_internal::AllWellFormed(kGaugeNames));
static_assert(metric_names_internal::AllWellFormed(kHistogramNames));
static_assert(metric_names_internal::AllWellFormed(kTraceSpanNames));
static_assert(metric_names_internal::StrictlySorted(kCounterNames));
static_assert(metric_names_internal::StrictlySorted(kGaugeNames));
static_assert(metric_names_internal::StrictlySorted(kHistogramNames));
static_assert(metric_names_internal::StrictlySorted(kTraceSpanNames));

/// True for the reserved test prefix ("t.<operation>"): tests may mint
/// scratch metrics without touching this header, exactly like failpoints.
constexpr bool IsTestMetricName(std::string_view name) {
  return name.size() > 2 && name.substr(0, 2) == "t." &&
         MetricNameWellFormed(name);
}

constexpr bool IsRegisteredCounter(std::string_view name) {
  return metric_names_internal::Contains(kCounterNames, name) ||
         IsTestMetricName(name);
}

constexpr bool IsRegisteredGauge(std::string_view name) {
  return metric_names_internal::Contains(kGaugeNames, name) ||
         IsTestMetricName(name);
}

constexpr bool IsRegisteredHistogram(std::string_view name) {
  return metric_names_internal::Contains(kHistogramNames, name) ||
         IsTestMetricName(name);
}

constexpr bool IsRegisteredTraceSpan(std::string_view name) {
  return metric_names_internal::Contains(kTraceSpanNames, name) ||
         IsTestMetricName(name);
}

}  // namespace densest::obs

#endif  // DENSEST_OBS_METRIC_NAMES_H_
