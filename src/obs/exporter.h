// Copyright 2026 The densest Authors.
// Rendering the metrics plane at the process edges: Prometheus-style text
// exposition, a JSON mirror of the same snapshot, and a compact one-line
// summary for --stats-every style periodic dumps.
//
// Exposition contract (relied on by tools/check_obs.py in CI): every name
// in obs/metric_names.h appears in every exposition — registered slots
// are pre-allocated, so "never incremented" renders as an explicit 0, not
// an absent series. Names are mangled `subsystem.operation` ->
// `densest_subsystem_operation`; histograms expand to cumulative
// `_bucket{le="..."}` lines plus `_sum` and `_count`.

#ifndef DENSEST_OBS_EXPORTER_H_
#define DENSEST_OBS_EXPORTER_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace densest::obs {

/// \brief Stateless renderers over a collected MetricsSnapshot.
class MetricsExporter {
 public:
  /// Prometheus text exposition format (# TYPE comments, counter /
  /// gauge / histogram families).
  static std::string RenderPrometheus(const MetricsSnapshot& snapshot);

  /// The same snapshot as a JSON object:
  /// {"counters":{name:value,...},"gauges":{...},
  ///  "histograms":{name:{count,sum,min,max,mean,p50,p99,buckets:[...]}}}
  static std::string RenderJson(const MetricsSnapshot& snapshot);

  /// One line of the non-zero story — counters and histogram counts that
  /// are > 0 — for periodic stats dumps where 40 zero lines would bury
  /// the signal. Empty snapshot renders "no metrics".
  static std::string SummaryLine(const MetricsSnapshot& snapshot);
};

/// Collect() + RenderPrometheus over the global registry.
std::string RenderMetricsPrometheus();

/// Collect() + render + write to `path`. Format picked by extension:
/// ".json" gets the JSON mirror, anything else the text exposition.
Status WriteMetricsFile(const std::string& path);

}  // namespace densest::obs

#endif  // DENSEST_OBS_EXPORTER_H_
