#include "obs/exporter.h"

#include <cmath>
#include <cstdio>

namespace densest::obs {

namespace {

/// "subsystem.operation" -> "densest_subsystem_operation". The registry
/// grammar only admits [a-z0-9_.], so mangling is a plain dot swap.
std::string Mangle(const std::string& name) {
  std::string out = "densest_";
  for (char c : name) out.push_back(c == '.' ? '_' : c);
  return out;
}

/// Shortest round-trip-ish double rendering: integers without a trailing
/// ".0" (Prometheus and JSON both accept either), %.17g would be noisy.
std::string Num(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

std::string U64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string MetricsExporter::RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  for (const CounterSample& c : snapshot.counters) {
    const std::string m = Mangle(c.name);
    out += "# TYPE " + m + " counter\n";
    out += m + " " + U64(c.value) + "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string m = Mangle(g.name);
    out += "# TYPE " + m + " gauge\n";
    out += m + " " + Num(g.value) + "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string m = Mangle(h.name);
    out += "# TYPE " + m + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      // Trailing all-zero buckets past the data still need one +Inf line;
      // interior zero buckets are kept (cumulative form requires them for
      // correct quantile math on the scrape side) except when the whole
      // tail is empty — elide runs of empty buckets above the max bound
      // to keep the exposition readable.
      cumulative += h.buckets[i];
      const double bound = Histogram::BucketBound(i);
      const bool last = i + 1 == h.buckets.size();
      if (!last && cumulative == h.count && bound > h.max && h.buckets[i] == 0) {
        continue;
      }
      out += m + "_bucket{le=\"" + Num(bound) + "\"} " + U64(cumulative) + "\n";
    }
    out += m + "_sum " + Num(h.sum) + "\n";
    out += m + "_count " + U64(h.count) + "\n";
  }
  return out;
}

std::string MetricsExporter::RenderJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& c = snapshot.counters[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    \"" + c.name + "\": " + U64(c.value);
  }
  out += "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& g = snapshot.gauges[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    \"" + g.name + "\": " + Num(g.value);
  }
  out += "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    \"" + h.name + "\": {\"count\": " + U64(h.count) +
           ", \"sum\": " + Num(h.sum) + ", \"min\": " + Num(h.min) +
           ", \"max\": " + Num(h.max) + ", \"mean\": " + Num(h.Mean()) +
           ", \"p50\": " + Num(h.Quantile(0.5)) +
           ", \"p99\": " + Num(h.Quantile(0.99)) + ", \"buckets\": [";
    // Only up to the last non-empty bucket; the fixed shape is implied.
    size_t last = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] != 0) last = b + 1;
    }
    for (size_t b = 0; b < last; ++b) {
      if (b != 0) out += ", ";
      out += U64(h.buckets[b]);
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsExporter::SummaryLine(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSample& c : snapshot.counters) {
    if (c.value == 0) continue;
    if (!out.empty()) out += " ";
    out += c.name + "=" + U64(c.value);
  }
  for (const HistogramSample& h : snapshot.histograms) {
    if (h.count == 0) continue;
    if (!out.empty()) out += " ";
    out += h.name + "{n=" + U64(h.count) + ",p50=" + Num(h.Quantile(0.5)) +
           ",p99=" + Num(h.Quantile(0.99)) + "}";
  }
  return out.empty() ? "no metrics" : out;
}

std::string RenderMetricsPrometheus() {
  return MetricsExporter::RenderPrometheus(MetricsRegistry::Get().Collect());
}

Status WriteMetricsFile(const std::string& path) {
  const MetricsSnapshot snapshot = MetricsRegistry::Get().Collect();
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string body = json ? MetricsExporter::RenderJson(snapshot)
                                : MetricsExporter::RenderPrometheus(snapshot);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != body.size() || !close_ok) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

}  // namespace densest::obs
