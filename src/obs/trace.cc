#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/mutex.h"
#include "obs/metric_names.h"

namespace densest::obs {

namespace {

// Per-thread cap: at ~32 bytes/span this bounds one thread's buffer to
// ~32 MiB, far above any sane trace window; beyond it spans are counted
// as dropped rather than silently lost or unboundedly accumulated.
constexpr size_t kMaxSpansPerThread = size_t{1} << 20;

}  // namespace

/// One thread's append target. The owner thread appends under `mu` (its
/// own mutex, so uncontended except while a Drain is copying), never
/// resized by anyone else. Lives in the recorder's registry forever: a
/// traced thread may exit long before the drain.
struct TraceRecorder::ThreadBuffer {
  Mutex mu;
  std::vector<TraceSpan> spans DENSEST_GUARDED_BY(mu);
  uint32_t tid = 0;
};

struct TraceRecorder::Impl {
  Mutex registry_mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers
      DENSEST_GUARDED_BY(registry_mu);
  std::chrono::steady_clock::time_point epoch;
};

TraceRecorder::TraceRecorder() {
  impl_ = new Impl();  // lint:allow(naked-new) — leaked singleton
  impl_->epoch = std::chrono::steady_clock::now();
}

TraceRecorder& TraceRecorder::Get() {
  // Leaked like Failpoints: span sites run on pool threads that may
  // outlive main()'s statics.
  static TraceRecorder* instance =
      new TraceRecorder();  // lint:allow(naked-new) — leaked singleton
  return *instance;
}

void TraceRecorder::Start() {
  recording_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Stop() {
  recording_.store(false, std::memory_order_relaxed);
}

uint64_t TraceRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - impl_->epoch)
          .count());
}

TraceRecorder::ThreadBuffer& TraceRecorder::ThisThreadBuffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    MutexLock lock(impl_->registry_mu);
    impl_->buffers.push_back(std::make_unique<ThreadBuffer>());
    buffer = impl_->buffers.back().get();
    buffer->tid = static_cast<uint32_t>(impl_->buffers.size() - 1);
  }
  return *buffer;
}

void TraceRecorder::Record(std::string_view name, uint64_t ts_us,
                           uint64_t dur_us) {
  if (!IsRegisteredTraceSpan(name)) {
    // Same contract as MetricsRegistry: lint enforces the span-name
    // registry statically, so this is an instrumentation bug.
    std::fprintf(stderr,
                 "densest::obs: trace span \"%.*s\" is not in "
                 "obs/metric_names.h (and lacks the \"t.\" test prefix)\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  ThreadBuffer& buffer = ThisThreadBuffer();
  MutexLock lock(buffer.mu);
  if (buffer.spans.size() >= kMaxSpansPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.spans.push_back(TraceSpan{name, ts_us, dur_us, buffer.tid});
}

std::vector<TraceSpan> TraceRecorder::Drain() {
  std::vector<TraceSpan> out;
  {
    MutexLock lock(impl_->registry_mu);
    for (const std::unique_ptr<ThreadBuffer>& buffer : impl_->buffers) {
      MutexLock span_lock(buffer->mu);
      out.insert(out.end(), buffer->spans.begin(), buffer->spans.end());
      buffer->spans.clear();
    }
  }
  dropped_.store(0, std::memory_order_relaxed);
  std::sort(out.begin(), out.end(), [](const TraceSpan& a, const TraceSpan& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    // Equal-timestamp spans on one thread: the longer one opened first
    // (RAII destruction order), so emit it first for viewer nesting.
    return a.dur_us > b.dur_us;
  });
  return out;
}

std::string TraceRecorder::DrainToJson() {
  const std::vector<TraceSpan> spans = Drain();
  std::string json;
  json.reserve(64 + spans.size() * 96);
  json += "{\"traceEvents\":[";
  char buf[192];
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    // Span names come from the registry grammar ([a-z0-9_.]), so no JSON
    // escaping is needed.
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%.*s\",\"cat\":\"densest\",\"ph\":\"X\","
                  "\"ts\":%llu,\"dur\":%llu,\"pid\":1,\"tid\":%u}",
                  i == 0 ? "" : ",", static_cast<int>(s.name.size()),
                  s.name.data(), static_cast<unsigned long long>(s.ts_us),
                  static_cast<unsigned long long>(s.dur_us), s.tid);
    json += buf;
  }
  json += "],\"displayTimeUnit\":\"ms\"}\n";
  return json;
}

Status TraceRecorder::DrainToJsonFile(const std::string& path) {
  const std::string json = DrainToJson();
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

void TraceRecorder::ResetForTest() {
  Stop();
  MutexLock lock(impl_->registry_mu);
  for (const std::unique_ptr<ThreadBuffer>& buffer : impl_->buffers) {
    MutexLock span_lock(buffer->mu);
    buffer->spans.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace densest::obs
