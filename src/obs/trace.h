// Copyright 2026 The densest Authors.
// Structured tracing: per-thread span buffers drained to a
// chrome://tracing- / Perfetto-loadable JSON timeline.
//
// Two gates, mirroring failpoints:
//   - Compile gate: DENSEST_TRACING_ENABLED (CMake option DENSEST_TRACING,
//     ON by default, OFF in the perf-baseline CI leg). When off,
//     DENSEST_TRACE_SPAN(...) expands to nothing — zero code, zero data.
//   - Runtime gate: TraceRecorder::Start()/Stop(). Recording is OFF by
//     default; an un-started recorder costs one relaxed bool load per
//     span site.
//
// Span sites use DENSEST_TRACE_SPAN("subsystem.operation") — an RAII
// object that stamps steady-clock enter/exit. Names must be registered in
// obs/metric_names.h (kTraceSpanNames); tools/lint.py cross-checks both
// directions, and the reserved "t." prefix is open for tests.
//
// Concurrency model: each thread appends to its own buffer (registered
// under the recorder mutex on first span, then touched lock-free by the
// owner except for a per-buffer mutex taken briefly by Drain). Buffers
// are owned by the leaked recorder, so a thread may exit at any time;
// its spans stay collectable. Nesting needs no explicit tracking: spans
// are emitted as chrome "X" (complete) events at destruction, and the
// viewer reconstructs the stack per tid from containment.

#ifndef DENSEST_OBS_TRACE_H_
#define DENSEST_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace densest::obs {

/// \brief One closed span: [ts_us, ts_us + dur_us] on thread `tid`.
/// Timestamps are steady-clock microseconds since recorder construction;
/// tids are small dense integers in registration order (0 is whichever
/// thread traced first, typically main).
struct TraceSpan {
  std::string_view name;  ///< points into metric_names.h or a test literal
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;
};

/// \brief Process-wide span collector (leaked singleton, like Failpoints
/// and MetricsRegistry).
class TraceRecorder {
 public:
  static TraceRecorder& Get();

  /// Whether DENSEST_TRACE_SPAN sites are compiled in (CMake option
  /// DENSEST_TRACING). When false, Record() still works but nothing in
  /// the tree calls it, so drains yield an empty (valid) timeline.
  static constexpr bool compiled_in() {
#if defined(DENSEST_TRACING_ENABLED)
    return true;
#else
    return false;
#endif
  }

  /// Begins recording. Spans opened while stopped are not recorded (a
  /// span straddling Start() is dropped: enter decided not to record).
  void Start();
  /// Stops recording; already-buffered spans remain until drained.
  void Stop();
  bool recording() const {
    return recording_.load(std::memory_order_relaxed);
  }

  /// Moves every buffered span out (all threads), sorted by (tid, ts_us).
  /// Concurrent recording is safe but a span being recorded during the
  /// call lands in either this drain or the next.
  std::vector<TraceSpan> Drain();

  /// Spans dropped because a thread hit its buffer cap (cleared by Drain).
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Drains and renders the chrome://tracing JSON ("traceEvents" array of
  /// "X" complete events, one pid, per-thread tids).
  std::string DrainToJson();

  /// DrainToJson() straight to a file.
  Status DrainToJsonFile(const std::string& path);

  /// Stop + discard all buffered spans and the dropped counter. Only safe
  /// with no concurrent span sites, i.e. between tests.
  void ResetForTest();

  /// Called by ScopedTraceSpan; validates `name` (registered or "t."),
  /// then appends to the calling thread's buffer.
  void Record(std::string_view name, uint64_t ts_us, uint64_t dur_us);

  /// Microseconds since recorder construction (the span clock).
  uint64_t NowMicros() const;

 private:
  TraceRecorder();

  struct ThreadBuffer;
  ThreadBuffer& ThisThreadBuffer();

  std::atomic<bool> recording_{false};
  std::atomic<uint64_t> dropped_{0};
  struct Impl;
  Impl* impl_;
};

#if defined(DENSEST_TRACING_ENABLED)

/// \brief RAII span: stamps enter on construction, records on
/// destruction. Decides at enter whether to record — a Start() arriving
/// mid-span doesn't produce a half-timed event.
class ScopedTraceSpan {
 public:
  explicit ScopedTraceSpan(std::string_view name) {
    TraceRecorder& rec = TraceRecorder::Get();
    if (rec.recording()) {
      name_ = name;
      start_us_ = rec.NowMicros();
      active_ = true;
    }
  }
  ~ScopedTraceSpan() {
    if (active_) {
      TraceRecorder& rec = TraceRecorder::Get();
      rec.Record(name_, start_us_, rec.NowMicros() - start_us_);
    }
  }
  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  std::string_view name_;
  uint64_t start_us_ = 0;
  bool active_ = false;
};

#define DENSEST_TRACE_CONCAT_INNER(a, b) a##b
#define DENSEST_TRACE_CONCAT(a, b) DENSEST_TRACE_CONCAT_INNER(a, b)
#define DENSEST_TRACE_SPAN(name)                    \
  ::densest::obs::ScopedTraceSpan DENSEST_TRACE_CONCAT( \
      densest_trace_span_, __LINE__)(name)

#else  // !DENSEST_TRACING_ENABLED

#define DENSEST_TRACE_SPAN(name) \
  do {                           \
  } while (false)

#endif  // DENSEST_TRACING_ENABLED

}  // namespace densest::obs

#endif  // DENSEST_OBS_TRACE_H_
