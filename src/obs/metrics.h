// Copyright 2026 The densest Authors.
// Lock-cheap process-wide metrics registry: named Counter / Gauge /
// Histogram handles over relaxed atomics, collected into a consistent
// snapshot for the exporters (obs/exporter.h).
//
// Design, and why it is cheap enough to leave on everywhere:
//   - One slot per registered name (obs/metric_names.h), pre-allocated at
//     first use and never freed or moved, so a handle is a plain reference
//     that stays valid for the process lifetime. Call sites look the name
//     up once through a function-local static inside the DENSEST_METRIC_*
//     macros; the steady-state cost of Inc() is one relaxed load (the
//     global enable flag) plus one relaxed fetch_add on a cache line the
//     calling thread rarely shares.
//   - Counters are striped across 8 cache-line-aligned atomics; each
//     thread picks a stripe once (round-robin thread_local), so writer,
//     reader-pool, and engine-pool threads don't bounce one line. Value()
//     and Collect() sum the stripes.
//   - Unregistered names abort: lint enforces the registry statically
//     (tools/lint.py --self-test covers it), so hitting the abort means a
//     site bypassed the macro grammar. Names with the reserved "t."
//     prefix are exempt — tests mint those on demand, like failpoints.
//   - Collect() is wait-free for the writers it observes: it reads each
//     slot with relaxed loads, so a snapshot is monotone-consistent (every
//     counter value was true at some instant during the call; 64-bit
//     atomics cannot tear) rather than a cross-metric linearization point,
//     which is all a scrape needs.
//
// The global enable flag (MetricsRegistry::set_enabled) exists for the
// bench overhead gate: benches A/B the same binary with metrics on/off to
// prove the on-path costs < 2%. It is not a lifecycle: normal runs leave
// it on (the default).

#ifndef DENSEST_OBS_METRICS_H_
#define DENSEST_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metric_names.h"

namespace densest::obs {

namespace metrics_internal {

/// Relaxed CAS add for pre-C++20-fetch_add-style atomic doubles; the
/// histogram sum is the only contended double in the plane.
inline void AtomicAdd(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

inline void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Global on/off for the hot paths; relaxed — flipping it mid-run only
/// needs to become visible eventually (bench A/B flips it between phases,
/// with the phases separated by thread joins).
inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

inline bool Enabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

/// Stripe assignment: each thread draws one index for life, round-robin,
/// so any 8 concurrent threads spread across all stripes.
size_t ThisThreadStripe();

}  // namespace metrics_internal

/// \brief Monotone event counter, striped to keep concurrent Inc() from
/// bouncing a single cache line. Handles come from MetricsRegistry /
/// DENSEST_METRIC_COUNTER and live forever.
class Counter {
 public:
  static constexpr size_t kStripes = 8;

  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t delta = 1) {
    if (!metrics_internal::Enabled()) return;
    stripes_[metrics_internal::ThisThreadStripe()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over stripes; monotone-consistent under concurrent Inc().
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  std::string name_;
  Stripe stripes_[kStripes];
};

/// \brief Last-written value (a level, not a tally): queue depth, answer
/// age, current epoch, current density.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) {
    if (!metrics_internal::Enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  std::string name_;
  std::atomic<double> v_{0};
};

/// \brief Concurrent log2-bucketed histogram of non-negative values.
/// Bucket i counts observations with value <= 2^i (bucket 0: <= 1; the
/// last bucket is the +Inf catch-all), which is plenty of resolution for
/// latencies spanning 1us..~1h while keeping Observe() to two relaxed
/// RMWs plus min/max CAS. Distinct from densest::Histogram (common/),
/// which is a single-threaded exact-quantile reservoir; this one trades
/// quantile exactness for thread-safety and a mergeable fixed shape.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value) {
    if (!metrics_internal::Enabled()) return;
    if (value < 0) value = 0;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    metrics_internal::AtomicAdd(sum_, value);
    metrics_internal::AtomicMin(min_, value);
    metrics_internal::AtomicMax(max_, value);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// +Inf / -Inf when empty (the collected sample reports 0 instead).
  double MinSeen() const { return min_.load(std::memory_order_relaxed); }
  double MaxSeen() const { return max_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

  /// Upper bound of bucket i (2^i), +Inf for the last bucket.
  static double BucketBound(size_t i);

 private:
  friend class MetricsRegistry;

  static size_t BucketIndex(double value);

  std::string name_;
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// \brief One collected counter/gauge/histogram value, detached from the
/// live atomics; what the exporters and --stats-every render.
struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0;
};

struct HistogramSample {
  std::string name;
  uint64_t count = 0;
  double sum = 0;
  double min = 0;  ///< 0 when empty
  double max = 0;  ///< 0 when empty
  std::array<uint64_t, Histogram::kBuckets> buckets = {};

  double Mean() const { return count == 0 ? 0 : sum / double(count); }
  /// Approximate quantile from the log2 buckets (returns the upper bound
  /// of the bucket holding the q-th observation; 0 when empty).
  double Quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;      ///< registry order (sorted)
  std::vector<GaugeSample> gauges;          ///< registry order (sorted)
  std::vector<HistogramSample> histograms;  ///< registry order (sorted)
};

/// \brief Process-wide owner of every metric slot. Leaked singleton like
/// Failpoints: handles returned by Get*() stay valid until process exit.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  /// Handle lookup by registered name (binary search over the name table)
  /// or by a reserved "t." test name (mutex-guarded side table, minted on
  /// first use). Aborts on any other name — see the file comment.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Detached snapshot of every slot, registered names first (in
  /// metric_names.h order, ALWAYS all present — exposition completeness
  /// is checked against the header in CI) then any live test metrics.
  MetricsSnapshot Collect() const;

  /// Bench A/B switch; see the file comment. Defaults to enabled.
  void set_enabled(bool enabled) {
    metrics_internal::EnabledFlag().store(enabled,
                                          std::memory_order_relaxed);
  }
  bool enabled() const { return metrics_internal::Enabled(); }

  /// Zeroes every registered slot and drops test metrics (invalidating
  /// their handles) — only safe with no concurrent metric writers, i.e.
  /// between tests.
  void ResetForTest();

 private:
  MetricsRegistry();

  struct TestSlots;  // "t."-prefixed overflow, defined in metrics.cc

  // Registered slots, index-aligned with the metric_names.h arrays.
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  TestSlots* test_slots_;
};

}  // namespace densest::obs

/// Call-site macros: look the handle up once (function-local static), then
/// touch atomics only. `name` must be a registered literal — tools/lint.py
/// cross-checks every occurrence against obs/metric_names.h.
#define DENSEST_METRIC_COUNTER(name)                               \
  ([]() -> ::densest::obs::Counter& {                              \
    static ::densest::obs::Counter& slot =                         \
        ::densest::obs::MetricsRegistry::Get().GetCounter(name);   \
    return slot;                                                   \
  }())

#define DENSEST_METRIC_GAUGE(name)                                 \
  ([]() -> ::densest::obs::Gauge& {                                \
    static ::densest::obs::Gauge& slot =                           \
        ::densest::obs::MetricsRegistry::Get().GetGauge(name);     \
    return slot;                                                   \
  }())

#define DENSEST_METRIC_HISTOGRAM(name)                             \
  ([]() -> ::densest::obs::Histogram& {                            \
    static ::densest::obs::Histogram& slot =                       \
        ::densest::obs::MetricsRegistry::Get().GetHistogram(name); \
    return slot;                                                   \
  }())

#endif  // DENSEST_OBS_METRICS_H_
