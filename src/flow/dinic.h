// Copyright 2026 The densest Authors.
// Dinic's max-flow algorithm. The exact densest-subgraph solver (Goldberg's
// reduction) drives this; capacities are doubles because the reduction
// embeds the real-valued density guess g into arc capacities.

#ifndef DENSEST_FLOW_DINIC_H_
#define DENSEST_FLOW_DINIC_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/cancel.h"

namespace densest {

/// \brief Knobs for a Dinic solver (the repo-wide options convention:
/// every engine takes `const XOptions&` with a `cancel` member).
struct DinicOptions {
  /// Optional cooperative cancellation: MaxFlow polls the token at the top
  /// of each BFS phase (O(V) phases total) and returns the partial flow
  /// when it trips. The caller must re-check the token to distinguish a
  /// converged solve from an abandoned one. Null = never stops.
  const CancelToken* cancel = nullptr;
};

/// \brief Max-flow solver on a directed network with double capacities.
///
/// Usage: AddArc all arcs, then MaxFlow(s, t), then MinCutSourceSide().
/// Capacities can be updated in place (SetArcCapacity) between solves;
/// ResetFlow() restores all residual capacities.
class Dinic {
 public:
  /// Creates a network with `num_nodes` nodes and no arcs.
  explicit Dinic(int num_nodes, const DinicOptions& options = {});

  /// Adds arc u -> v with capacity `cap` (and a residual reverse arc of
  /// capacity `reverse_cap`, default 0). Returns the arc's id.
  int AddArc(int u, int v, double cap, double reverse_cap = 0.0);

  /// Overwrites the capacity of arc `arc_id` (forward direction). Call
  /// ResetFlow() afterwards before re-solving.
  void SetArcCapacity(int arc_id, double cap);

  /// Restores residual capacities to the configured capacities.
  void ResetFlow();

  /// Deprecated spelling: pass the token through DinicOptions::cancel at
  /// construction. Kept as a thin shim so existing callers compile.
  void set_cancel(const CancelToken* cancel) { cancel_ = cancel; }

  /// Computes the max flow from s to t over the current residual network
  /// (call ResetFlow() first to solve from scratch).
  double MaxFlow(int s, int t);

  /// After MaxFlow: true for each node reachable from s in the residual
  /// network (the source side of a minimum cut).
  std::vector<uint8_t> MinCutSourceSide(int s) const;

  int num_nodes() const { return num_nodes_; }

 private:
  struct Arc {
    int to;
    int rev;          // slot of the reverse arc in arcs_[to]
    double residual;  // remaining capacity
    double capacity;  // configured capacity (for ResetFlow)
  };

  bool Bfs(int s, int t);
  double Dfs(int u, int t, double pushed);

  int num_nodes_;
  const CancelToken* cancel_ = nullptr;
  std::vector<std::vector<Arc>> arcs_;
  std::vector<std::pair<int, int>> arc_index_;  // arc id -> (node, slot)
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace densest

#endif  // DENSEST_FLOW_DINIC_H_
