// Copyright 2026 The densest Authors.
// Exponential-time exact oracles for tiny graphs — the ground truth the
// test suite checks every other solver against.

#ifndef DENSEST_FLOW_BRUTE_FORCE_H_
#define DENSEST_FLOW_BRUTE_FORCE_H_

#include <vector>

#include "common/status.h"
#include "graph/directed_graph.h"
#include "graph/undirected_graph.h"

namespace densest {

/// \brief Output of the undirected brute-force search.
struct [[nodiscard]] BruteForceResult {
  std::vector<NodeId> nodes;
  double density = 0;
};

/// Enumerates all 2^n - 1 nonempty subsets (n <= 24 enforced) and returns
/// the densest. Supports weighted graphs.
StatusOr<BruteForceResult> BruteForceDensest(const UndirectedGraph& g);

/// \brief Output of the directed brute-force search.
struct [[nodiscard]] BruteForceDirectedResult {
  std::vector<NodeId> s_nodes;
  std::vector<NodeId> t_nodes;
  double density = 0;
};

/// Enumerates all nonempty (S, T) pairs (n <= 12 enforced) and returns the
/// pair maximizing |E(S,T)| / sqrt(|S||T|). Unweighted arcs only.
StatusOr<BruteForceDirectedResult> BruteForceDensestDirected(
    const DirectedGraph& g);

}  // namespace densest

#endif  // DENSEST_FLOW_BRUTE_FORCE_H_
