#include "flow/goldberg.h"

#include <algorithm>
#include <cmath>

#include "flow/dinic.h"
#include "graph/subgraph.h"

namespace densest {

StatusOr<ExactDensestResult> ExactDensestSubgraph(
    const UndirectedGraph& g, const ExactDensestOptions& options) {
  const NodeId n = g.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");

  ExactDensestResult result;
  const double total_weight = g.total_weight();
  if (total_weight <= 0) {
    // Edgeless graph: every subset has density 0; a singleton is optimal.
    result.nodes = {0};
    result.density = 0;
    return result;
  }

  // Network layout: graph nodes 0..n-1, source = n, sink = n+1.
  const int source = static_cast<int>(n);
  const int sink = static_cast<int>(n) + 1;
  Dinic dinic(static_cast<int>(n) + 2, {.cancel = options.cancel});

  std::vector<int> sink_arcs(n);
  std::vector<double> wdeg(n);
  for (NodeId u = 0; u < n; ++u) {
    wdeg[u] = g.WeightedDegree(u);
    dinic.AddArc(source, static_cast<int>(u), total_weight);
    sink_arcs[u] = dinic.AddArc(static_cast<int>(u), sink, 0.0);
  }
  for (NodeId u = 0; u < n; ++u) {
    auto nbrs = g.Neighbors(u);
    auto ws = g.NeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      NodeId v = nbrs[i];
      if (v <= u) continue;  // one pair of opposed arcs per undirected edge
      double w = ws.empty() ? 1.0 : ws[i];
      dinic.AddArc(static_cast<int>(u), static_cast<int>(v), w, w);
    }
  }

  // Cut-gap tolerance: for unweighted graphs two distinct densities differ
  // by at least 1/(n(n-1)), giving a cut gap of at least 2/n; for weighted
  // graphs fall back to a relative tolerance.
  const double gap_tolerance =
      g.is_weighted()
          ? std::max(1e-9, 1e-12 * total_weight * static_cast<double>(n))
          : 1.0 / (2.0 * static_cast<double>(n));

  // Start from the trivial candidate S = V.
  NodeSet best(n, /*full=*/true);
  double best_density = total_weight / static_cast<double>(n);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Per-iteration poll; MaxFlow additionally polls per BFS phase (via
    // set_cancel above) and returns a partial flow when tripped, so the
    // re-check after the solve is what keeps a truncated flow value from
    // being mistaken for a converged one.
    if (Status c = CheckCancel(options.cancel); !c.ok()) return c;
    const double guess = best_density;
    for (NodeId u = 0; u < n; ++u) {
      dinic.SetArcCapacity(sink_arcs[u],
                           total_weight + 2.0 * guess - wdeg[u]);
    }
    dinic.ResetFlow();
    double flow = dinic.MaxFlow(source, sink);
    ++result.flow_iterations;
    // A token tripped mid-solve yields a partial flow whose residual
    // network certifies nothing; fail before reading a cut from it.
    if (Status c = CheckCancel(options.cancel); !c.ok()) return c;

    const double cut_bound = total_weight * static_cast<double>(n);
    if (flow >= cut_bound - gap_tolerance) break;  // no denser set exists

    std::vector<uint8_t> side = dinic.MinCutSourceSide(source);
    NodeSet candidate(n);
    for (NodeId u = 0; u < n; ++u) {
      if (side[u]) candidate.Insert(u);
    }
    if (candidate.empty()) break;
    double candidate_density = InducedDensity(g, candidate);
    if (candidate_density <= best_density) break;  // numerically converged
    best = candidate;
    best_density = candidate_density;
  }

  result.nodes = best.ToVector();
  result.density = best_density;
  return result;
}

}  // namespace densest
