#include "flow/brute_force.h"

#include <bit>
#include <cmath>

namespace densest {

StatusOr<BruteForceResult> BruteForceDensest(const UndirectedGraph& g) {
  const NodeId n = g.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");
  if (n > 24) return Status::InvalidArgument("brute force limited to n <= 24");

  // Edge list once; subsets tested by bitmask.
  struct E {
    uint32_t mask;
    double w;
  };
  std::vector<E> edges;
  for (NodeId u = 0; u < n; ++u) {
    auto nbrs = g.Neighbors(u);
    auto ws = g.NeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      NodeId v = nbrs[i];
      if (v > u) {
        edges.push_back(
            {(1u << u) | (1u << v), ws.empty() ? 1.0 : ws[i]});
      } else if (v == u) {
        edges.push_back({1u << u, ws.empty() ? 1.0 : ws[i]});
      }
    }
  }

  BruteForceResult best;
  best.density = -1;
  uint32_t best_mask = 0;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    double w = 0;
    for (const E& e : edges) {
      if ((e.mask & mask) == e.mask) w += e.w;
    }
    double rho = w / static_cast<double>(std::popcount(mask));
    if (rho > best.density) {
      best.density = rho;
      best_mask = mask;
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    if (best_mask & (1u << u)) best.nodes.push_back(u);
  }
  return best;
}

StatusOr<BruteForceDirectedResult> BruteForceDensestDirected(
    const DirectedGraph& g) {
  const NodeId n = g.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");
  if (n > 12) return Status::InvalidArgument("brute force limited to n <= 12");

  // out_mask[u] = bitmask of targets of u's arcs.
  std::vector<uint32_t> out_mask(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.OutNeighbors(u)) out_mask[u] |= 1u << v;
  }

  BruteForceDirectedResult best;
  best.density = -1;
  uint32_t best_s = 0, best_t = 0;
  for (uint32_t s = 1; s < (1u << n); ++s) {
    for (uint32_t t = 1; t < (1u << n); ++t) {
      uint64_t arcs = 0;
      uint32_t rest = s;
      while (rest) {
        int u = std::countr_zero(rest);
        rest &= rest - 1;
        arcs += std::popcount(out_mask[u] & t);
      }
      double rho = static_cast<double>(arcs) /
                   std::sqrt(static_cast<double>(std::popcount(s)) *
                             static_cast<double>(std::popcount(t)));
      if (rho > best.density) {
        best.density = rho;
        best_s = s;
        best_t = t;
      }
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    if (best_s & (1u << u)) best.s_nodes.push_back(u);
    if (best_t & (1u << u)) best.t_nodes.push_back(u);
  }
  return best;
}

}  // namespace densest
