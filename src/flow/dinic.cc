#include "flow/dinic.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace densest {

namespace {
// Flows below this are treated as zero to keep double arithmetic stable.
constexpr double kFlowEps = 1e-11;
}  // namespace

Dinic::Dinic(int num_nodes, const DinicOptions& options)
    : num_nodes_(num_nodes),
      cancel_(options.cancel),
      arcs_(num_nodes),
      level_(num_nodes),
      iter_(num_nodes) {}

int Dinic::AddArc(int u, int v, double cap, double reverse_cap) {
  int u_slot = static_cast<int>(arcs_[u].size());
  int v_slot = static_cast<int>(arcs_[v].size());
  if (u == v) {
    // A self-arc pair would otherwise compute the wrong rev slots.
    v_slot = u_slot + 1;
  }
  arcs_[u].push_back(Arc{v, v_slot, cap, cap});
  arcs_[v].push_back(Arc{u, u_slot, reverse_cap, reverse_cap});
  arc_index_.emplace_back(u, u_slot);
  return static_cast<int>(arc_index_.size()) - 1;
}

void Dinic::SetArcCapacity(int arc_id, double cap) {
  auto [u, slot] = arc_index_[arc_id];
  arcs_[u][slot].capacity = cap;
}

void Dinic::ResetFlow() {
  for (auto& list : arcs_) {
    for (Arc& a : list) a.residual = a.capacity;
  }
}

bool Dinic::Bfs(int s, int t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::deque<int> queue;
  level_[s] = 0;
  queue.push_back(s);
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop_front();
    for (const Arc& a : arcs_[u]) {
      if (a.residual > kFlowEps && level_[a.to] < 0) {
        level_[a.to] = level_[u] + 1;
        queue.push_back(a.to);
      }
    }
  }
  return level_[t] >= 0;
}

double Dinic::Dfs(int u, int t, double pushed) {
  if (u == t) return pushed;
  for (size_t& i = iter_[u]; i < arcs_[u].size(); ++i) {
    Arc& a = arcs_[u][i];
    if (a.residual > kFlowEps && level_[a.to] == level_[u] + 1) {
      double got = Dfs(a.to, t, std::min(pushed, a.residual));
      if (got > kFlowEps) {
        a.residual -= got;
        arcs_[a.to][a.rev].residual += got;
        return got;
      }
    }
  }
  return 0.0;
}

double Dinic::MaxFlow(int s, int t) {
  double flow = 0.0;
  // One poll per BFS phase: each phase is one level-graph build plus its
  // blocking flow, the natural bounded unit of a Dinic solve.
  while (!ShouldStop(cancel_) && Bfs(s, t)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (true) {
      double pushed = Dfs(s, t, std::numeric_limits<double>::infinity());
      if (pushed <= kFlowEps) break;
      flow += pushed;
    }
  }
  return flow;
}

std::vector<uint8_t> Dinic::MinCutSourceSide(int s) const {
  std::vector<uint8_t> reachable(num_nodes_, 0);
  std::deque<int> queue;
  reachable[s] = 1;
  queue.push_back(s);
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop_front();
    for (const Arc& a : arcs_[u]) {
      if (a.residual > kFlowEps && !reachable[a.to]) {
        reachable[a.to] = 1;
        queue.push_back(a.to);
      }
    }
  }
  return reachable;
}

}  // namespace densest
