// Copyright 2026 The densest Authors.
// Exact densest subgraph via Goldberg's max-flow reduction (1984), with
// Dinkelbach-style iteration on the density parameter. This replaces the
// paper's LP/CLP exact baseline (§6.2): Charikar proved the LP optimum
// equals rho*(G); Goldberg's reduction computes the same rho* exactly.

#ifndef DENSEST_FLOW_GOLDBERG_H_
#define DENSEST_FLOW_GOLDBERG_H_

#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "graph/undirected_graph.h"

namespace densest {

/// \brief Output of the exact solver.
struct [[nodiscard]] ExactDensestResult {
  /// An optimal set S with rho(S) = rho*(G) (ascending node ids).
  std::vector<NodeId> nodes;
  /// rho*(G).
  double density = 0;
  /// Number of max-flow solves performed.
  int flow_iterations = 0;
};

/// \brief Knobs for the exact solver.
struct ExactDensestOptions {
  /// Hard cap on Dinkelbach iterations (each is one max-flow). The
  /// iteration provably terminates; the cap guards degenerate numerics.
  int max_iterations = 128;
  /// Optional cooperative cancellation (see common/cancel.h): polled per
  /// Dinkelbach iteration and per BFS phase inside each max-flow solve. A
  /// tripped token fails the call with kCancelled/kDeadlineExceeded —
  /// partial exact results are never returned. Null = never cancelled.
  const CancelToken* cancel = nullptr;
};

/// Computes the exact densest subgraph of an undirected (possibly
/// weighted) graph. Requires a loop-free graph (GraphBuilder's default).
///
/// Method: for a guess g, build the network
///   s -> v  with capacity W            (W = total edge weight)
///   v -> t  with capacity W + 2g - wdeg(v)
///   u <-> v with capacity w(u,v) each way, per edge
/// Min cut = W n - 2 max_S (w(E(S)) - g |S|), so a cut below W n certifies
/// a set S with rho(S) > g; the source side of the cut attains the max.
/// Dinkelbach iteration: set g to the density of the recovered S and
/// repeat until no denser set exists. Converges in a handful of flows.
StatusOr<ExactDensestResult> ExactDensestSubgraph(
    const UndirectedGraph& g, const ExactDensestOptions& options = {});

}  // namespace densest

#endif  // DENSEST_FLOW_GOLDBERG_H_
