// Copyright 2026 The densest Authors.
// The incremental densest-subgraph maintenance service: consumes a
// timestamped stream of edge insertions and deletions and keeps a
// certified approximation of rho*(G) answerable at any instant.
//
// Architecture: the engine maintains one dynamic adjacency (the live
// graph) and a *window* of DegreeLevels decompositions for geometrically
// spaced density thresholds d_k = d0 (1+eps)^k. After every update
// settles, the largest maintained k whose top level set is nonempty — call
// it k* — certifies a sandwich
//
//   best-level density of structure k*   <=  rho*  <  2(1+eps) d_{k*+1},
//
// where the left side is the actual density of a concrete node set the
// engine can hand out. The certified ratio between the two sides is at
// most 2(1+eps)^3 — the paper-style (2+eps')(1+eps') band.
//
// Only a window of thresholds around k* is maintained (updates cost
// O(window) counter touches, not O(log n) structures). When the density
// drifts out of the window — k* reaches the top slot, or every maintained
// slot goes empty — the certificate has degraded, and the configured
// fallback kicks in: a full batch recompute of the live edge set through
// the fused MultiRunEngine (the batch engines are the slow path of this
// service, not a separate world) re-centers the window, and the slots that
// slid into view are rebuilt by static peeling. Window moves are
// geometrically spaced in density, so recomputes amortize to O(log)
// occurrences over any monotone density trajectory.

#ifndef DENSEST_DYNAMIC_DYNAMIC_DENSEST_H_
#define DENSEST_DYNAMIC_DYNAMIC_DENSEST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/answer.h"
#include "core/multi_run.h"
#include "dynamic/degree_levels.h"
#include "graph/types.h"
#include "stream/update_stream.h"

namespace densest {

/// \brief What to do when the certificate degrades (the density estimate
/// leaves the maintained threshold window).
enum class DynamicFallback {
  /// Re-center by running the batch Algorithm 1 over the live edge set
  /// through the MultiRunEngine, then rebuild the slots that came into
  /// view. The default: the recompute both re-centers accurately and
  /// refreshes stats().last_recompute_density.
  kRecompute,
  /// Re-center using only the direction of the degradation (slide the
  /// window one radius up or down and rebuild the new slots). Cheaper per
  /// event; may take several slides after a large density jump.
  kRebuildOnly,
  /// Serve best-effort answers flagged certified == false until the
  /// window happens to cover the density again. For tests and callers
  /// that schedule their own recomputes.
  kNever,
};

/// \brief Knobs for the maintenance engine.
struct DynamicDensestOptions {
  /// The eps of the certified band: thresholds are spaced by (1+eps) and
  /// the level structures use 2(1+eps)d / 2d promote/demote bounds. The
  /// certified approximation ratio is 2(1+eps)^3. Must be in [0.01, 1]
  /// (the level-ladder height diverges as eps -> 0).
  ///
  /// Update cost scales with the level-ladder height log_{1+eps} n times
  /// the threshold-window width (also ~1/eps slots), so eps is the
  /// quality/throughput dial: 0.75 certifies ~10.7x worst case at >1M
  /// updates/s on a laptop core; 0.5 tightens the certificate to ~6.7x at
  /// roughly two-thirds the throughput. Observed error against exact
  /// recomputation is far inside either band (~1.01x in the benches).
  double epsilon = 0.75;
  /// Extra threshold slots maintained above the certified range after a
  /// re-center (the low end has a built-in cushion — see the fallback
  /// logic); larger values trade per-update work for fewer window moves.
  uint32_t window_radius = 1;
  /// Fallback policy on certificate degradation.
  DynamicFallback fallback = DynamicFallback::kRecompute;
  /// Epsilon for the batch Algorithm 1 recompute (kRecompute only).
  double recompute_epsilon = 0.5;
  /// Consecutive updates the window-trim condition (k* drifted more than
  /// trim_span_ above the window's low end) must hold before the bottom is
  /// actually trimmed. A density hovering at a slot boundary flips the
  /// condition on and off every few updates; trimming on the first flip
  /// drops low slots that the very next dip needs back, and re-entering
  /// them costs a full recompute + rebuild. 1 restores the immediate-trim
  /// behavior. Must be >= 1.
  uint32_t trim_hysteresis = 64;
  /// Wall-clock budget for one batch recompute, in milliseconds (0 =
  /// unbounded; kRecompute only). Overload protection: when a recompute
  /// blows this budget it is cancelled cooperatively (common/cancel.h),
  /// the engine keeps serving the last certified answer widened to cover
  /// every update applied since (Answer::stale), and the recompute
  /// re-arms after recompute_rearm_updates further updates — with the
  /// budget doubled per consecutive cancellation, so a graph that has
  /// genuinely outgrown the budget still converges instead of thrashing.
  double recompute_deadline_ms = 0;
  /// Updates to absorb before re-attempting a deadline-cancelled
  /// recompute (kRecompute with a deadline only). Must be >= 1.
  uint32_t recompute_rearm_updates = 4096;
  /// Thread fan-out of the recompute engine (see MultiRunOptions); any
  /// value yields identical recompute results.
  MultiRunOptions engine_options;
};

/// \brief Counters the service accumulates (monotone; never reset).
struct DynamicDensestStats {
  uint64_t inserts = 0;          ///< applied insertions
  uint64_t deletes = 0;          ///< applied deletions
  uint64_t ignored = 0;          ///< duplicates, absent deletes, self-loops
  uint64_t level_moves = 0;      ///< promotions + demotions, all structures
  uint64_t recomputes = 0;       ///< batch fallback runs
  uint64_t window_moves = 0;     ///< times the threshold window re-centered
  uint64_t structures_rebuilt = 0;
  /// Updates on which the trim condition held but hysteresis deferred the
  /// move (see DynamicDensestOptions::trim_hysteresis).
  uint64_t trims_deferred = 0;
  /// Trim streaks that reset before reaching the hysteresis threshold —
  /// each is a transient excursion whose trim (and the recompute the next
  /// density dip would have forced) was suppressed.
  uint64_t recomputes_avoided = 0;
  /// Batch recomputes stopped by the recompute deadline (overload
  /// protection; see DynamicDensestOptions::recompute_deadline_ms).
  uint64_t recomputes_cancelled = 0;
  /// Queries answered from the widened stale band while a cancelled
  /// recompute was pending.
  uint64_t stale_answers_served = 0;
  double last_recompute_density = 0;
};

/// \brief The maintenance engine. Single-writer: Apply* calls must be
/// serialized; queries read only settled state and may interleave freely
/// with them from the same thread.
class DynamicDensest {
 public:
  /// Creates an engine over the node universe [0, n). Fails with
  /// InvalidArgument for n == 0 or an out-of-range epsilon.
  static StatusOr<std::unique_ptr<DynamicDensest>> Create(
      NodeId n, const DynamicDensestOptions& options = {});

  /// \brief Overload-protection state (recompute_deadline_ms), captured
  /// in snapshots so a restored engine keeps serving the same widened
  /// stale band a pending one did. All-default when nothing is pending.
  struct OverloadState {
    bool pending = false;           ///< a cancelled recompute awaits re-arm
    uint32_t cancel_streak = 0;     ///< consecutive cancelled recomputes
    uint64_t rearm_at_updates = 0;  ///< inserts+deletes count to retry at
    double last_cert_upper = 0;     ///< last certified upper bound
    uint64_t last_cert_inserts = 0; ///< inserts when it was captured
  };

  /// Reconstructs an engine from snapshotted state (dynamic/snapshot.h
  /// handles the byte format; this takes the decoded pieces): the
  /// adjacency VERBATIM (see DynamicAdjacency::RestoreAdjacency on why
  /// order matters), the window's first slot, one per-node level array per
  /// maintained slot, the trim streak, and the accumulated stats. Fails
  /// with InvalidArgument when any piece is internally inconsistent. A
  /// successful restore is bit-for-bit: the engine evolves identically to
  /// the one the state was captured from.
  static StatusOr<std::unique_ptr<DynamicDensest>> FromSnapshotState(
      NodeId n, const DynamicDensestOptions& options,
      std::vector<std::vector<NodeId>> adjacency, uint32_t lo,
      std::vector<std::vector<uint16_t>> slot_levels, uint32_t trim_streak,
      const DynamicDensestStats& stats, const OverloadState& overload);

  /// Applies one update. Self-loops, out-of-range endpoints, duplicate
  /// inserts and deletes of absent edges are counted in stats().ignored
  /// and otherwise skipped — the maintained graph is always simple.
  void Apply(const EdgeUpdate& update);
  void ApplyBatch(std::span<const EdgeUpdate> batch);

  /// \brief A point-in-time answer — the engine serves the repo-wide
  /// unified type (core/answer.h). For this engine: certified is false
  /// only under DynamicFallback::kNever with a degraded window; stale is
  /// true while a deadline-cancelled recompute is pending (the certificate
  /// is the last one, widened by the sound growth bound); epoch stays 0
  /// (publication epochs are assigned by the serving plane, not here).
  using Answer = ::densest::Answer;
  /// O(window + levels): reads maintained aggregates only.
  Answer Query() const;
  /// The node set behind Query() (ascending ids); O(n).
  std::vector<NodeId> DensestNodes() const;
  /// The certified worst-case ratio upper_bound / density: 2(1+eps)^3.
  double ApproxBand() const;

  NodeId num_nodes() const { return adj_.num_nodes(); }
  EdgeId num_edges() const { return adj_.num_edges(); }
  /// Snapshot of the live edge set (u < v, unit weights) — what exactness
  /// checkpoints and external consumers recompute over.
  EdgeList CurrentEdges() const { return adj_.ToEdgeList(); }

  /// Accumulated counters, merged into one value struct. Safe to call
  /// concurrently with reader-thread Query() calls: the one counter a
  /// logically-const query bumps (stale_answers_served) is a relaxed
  /// atomic — an independent monotone tally with no ordering relationship
  /// to any other engine state, so a read that misses an in-flight
  /// increment just attributes it to the next call (the same contract as
  /// BinaryFileEdgeStream::io_retry_stats()). Every other field is
  /// writer-owned plain state: reading it concurrently with Apply* keeps
  /// the engine's single-writer rules.
  DynamicDensestStats stats() const {
    DynamicDensestStats merged = stats_;
    merged.stale_answers_served =
        stale_answers_served_.load(std::memory_order_relaxed);
    return merged;
  }
  const DynamicDensestOptions& options() const { return options_; }
  /// Maintained threshold window [lo, hi] as slot indices (d_k = d0
  /// (1+eps)^k); exposed for tests and the replay report.
  uint32_t window_lo() const { return lo_; }
  uint32_t window_hi() const { return lo_ + static_cast<uint32_t>(slots_.size()) - 1; }
  /// Snapshot introspection (dynamic/snapshot.cc serializes through
  /// these): the maintained slots, the live adjacency, and the hysteresis
  /// streak — together with window_lo() and stats(), the engine's entire
  /// mutable state.
  size_t num_slots() const { return slots_.size(); }
  const DegreeLevels& slot(size_t i) const { return slots_[i]; }
  const DynamicAdjacency& adjacency() const { return adj_; }
  uint32_t trim_streak() const { return trim_streak_; }
  /// True while a deadline-cancelled recompute is pending (queries serve
  /// the widened stale band until it re-arms and completes).
  bool recompute_pending() const { return recompute_pending_; }
  OverloadState overload_state() const {
    return OverloadState{recompute_pending_, cancel_streak_, rearm_at_updates_,
                         last_cert_upper_, last_cert_inserts_};
  }

  /// Brute-force audit of every maintained slot against the live
  /// adjacency (see DegreeLevels::CheckInvariants). O(slots * (n + m));
  /// for tests and the chaos harness.
  Status CheckInvariants() const;

 private:
  DynamicDensest(NodeId n, const DynamicDensestOptions& options);

  double ThresholdOf(uint32_t slot) const;
  /// Slot index of the largest threshold <= rho (clamped to the grid).
  uint32_t SlotBelow(double rho) const;
  /// Largest maintained slot with a nonempty top level, or -1.
  int FindCertifyingSlot() const;
  /// True when the certificate cannot be served from the current window.
  bool Degraded(int k_star) const;
  void MaybeFallback();
  /// Moves the maintained window to [new_lo, new_hi], keeping overlapping
  /// structures live and rebuilding the slots that came into view.
  void MoveWindow(uint32_t new_lo, uint32_t new_hi);

  DynamicDensestOptions options_;
  DynamicAdjacency adj_;
  uint32_t levels_;     // per-structure level count: (1+eps)^levels > n
  uint32_t max_slot_;   // top of the threshold grid: d_max certainly empty
  uint32_t trim_span_;  // max k* drift above lo_ before a re-center
  uint32_t lo_ = 0;     // first maintained slot
  uint32_t trim_streak_ = 0;  // consecutive updates the trim condition held
  std::vector<DegreeLevels> slots_;
  std::unique_ptr<MultiRunEngine> engine_;  // lazily created on recompute
  // Overload-protection state (recompute_deadline_ms); snapshotted as
  // OverloadState so a restored engine serves the same widened band a
  // pending one did instead of reporting an answer it cannot certify.
  bool recompute_pending_ = false;
  uint64_t rearm_at_updates_ = 0;   // inserts+deletes count to retry at
  uint32_t cancel_streak_ = 0;      // consecutive cancelled recomputes
  double last_cert_upper_ = 0;      // last certified upper bound on rho*
  uint64_t last_cert_inserts_ = 0;  // stats_.inserts when it was captured
  DynamicDensestStats stats_;  // writer-owned; stale tally lives below
  // Query() is logically const but counts the stale answers it serves.
  // Kept out of stats_ as a relaxed atomic so concurrent reader-thread
  // queries don't race on a plain field; stats() merges it back in.
  mutable std::atomic<uint64_t> stale_answers_served_{0};
};

}  // namespace densest

#endif  // DENSEST_DYNAMIC_DYNAMIC_DENSEST_H_
