#include "dynamic/degree_levels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/random.h"

namespace densest {

// ------------------------------------------------------------ EdgeKeySet --

EdgeKeySet::EdgeKeySet() : slots_(16, kEmpty), mask_(15) {}

size_t EdgeKeySet::IdealSlot(uint64_t key) const { return Mix64(key) & mask_; }

bool EdgeKeySet::Contains(uint64_t key) const {
  size_t i = IdealSlot(key);
  while (slots_[i] != kEmpty) {
    if (slots_[i] == key) return true;
    i = (i + 1) & mask_;
  }
  return false;
}

bool EdgeKeySet::Insert(uint64_t key) {
  size_t i = IdealSlot(key);
  while (slots_[i] != kEmpty) {
    if (slots_[i] == key) return false;
    i = (i + 1) & mask_;
  }
  slots_[i] = key;
  ++size_;
  if (size_ * 10 > slots_.size() * 7) Grow();
  return true;
}

bool EdgeKeySet::Erase(uint64_t key) {
  size_t i = IdealSlot(key);
  while (true) {
    if (slots_[i] == kEmpty) return false;
    if (slots_[i] == key) break;
    i = (i + 1) & mask_;
  }
  --size_;
  // Backward-shift deletion: pull displaced probe-chain members into the
  // hole instead of leaving a tombstone, so lookups stay short under the
  // service's insert/delete churn.
  size_t j = i;
  while (true) {
    slots_[i] = kEmpty;
    while (true) {
      j = (j + 1) & mask_;
      if (slots_[j] == kEmpty) return true;
      const size_t k = IdealSlot(slots_[j]);
      // Leave the record at j when its ideal slot k lies cyclically in
      // (i, j] — the hole at i does not break its probe chain.
      const bool reachable = i <= j ? (k > i && k <= j) : (k > i || k <= j);
      if (!reachable) {
        slots_[i] = slots_[j];
        i = j;
        break;
      }
    }
  }
}

void EdgeKeySet::Grow() {
  std::vector<uint64_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, kEmpty);
  mask_ = slots_.size() - 1;
  for (uint64_t key : old) {
    if (key == kEmpty) continue;
    size_t i = IdealSlot(key);
    while (slots_[i] != kEmpty) i = (i + 1) & mask_;
    slots_[i] = key;
  }
}

// ------------------------------------------------------ DynamicAdjacency --

bool DynamicAdjacency::Insert(NodeId u, NodeId v) {
  if (u == v || u >= num_nodes() || v >= num_nodes()) return false;
  if (!present_.Insert(EdgeKeySet::Key(u, v))) return false;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++m_;
  return true;
}

bool DynamicAdjacency::Erase(NodeId u, NodeId v) {
  if (u == v || u >= num_nodes() || v >= num_nodes()) return false;
  if (!present_.Erase(EdgeKeySet::Key(u, v))) return false;
  auto drop = [this](NodeId from, NodeId who) {
    std::vector<NodeId>& list = adj_[from];
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] == who) {
        list[i] = list.back();
        list.pop_back();
        return;
      }
    }
  };
  drop(u, v);
  drop(v, u);
  --m_;
  return true;
}

EdgeList DynamicAdjacency::ToEdgeList() const {
  EdgeList out(num_nodes());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId x : adj_[u]) {
      if (x > u) out.Add(u, x);
    }
  }
  return out;
}

Status DynamicAdjacency::RestoreAdjacency(std::vector<std::vector<NodeId>> lists) {
  const NodeId n = num_nodes();
  if (lists.size() != n) {
    return Status::InvalidArgument("adjacency node count mismatch");
  }
  EdgeKeySet present;
  EdgeId m = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId x : lists[u]) {
      if (x == u) return Status::InvalidArgument("self-loop in adjacency");
      if (x >= n) return Status::InvalidArgument("node id out of range");
      if (u < x) {
        if (!present.Insert(EdgeKeySet::Key(u, x))) {
          return Status::InvalidArgument("duplicate edge in adjacency");
        }
        ++m;
      }
    }
  }
  // Symmetry: every u > x entry must have been registered from the x side.
  EdgeId mirrored = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId x : lists[u]) {
      if (u > x) {
        if (!present.Contains(EdgeKeySet::Key(x, u))) {
          return Status::InvalidArgument("asymmetric adjacency");
        }
        ++mirrored;
      }
    }
  }
  if (mirrored != m) return Status::InvalidArgument("asymmetric adjacency");
  adj_ = std::move(lists);
  present_ = std::move(present);
  m_ = m;
  return Status::OK();
}

// ---------------------------------------------------------- DegreeLevels --

namespace {

/// Integer ceiling of a positive threshold, saturated so counters (which
/// never exceed the node count) can simply compare against it.
uint32_t CeilSaturated(double x) {
  const double c = std::ceil(x);
  if (c >= 4294967295.0) return std::numeric_limits<uint32_t>::max();
  return static_cast<uint32_t>(c);
}

}  // namespace

DegreeLevels::DegreeLevels(NodeId n, double d, double epsilon,
                           uint32_t levels)
    : d_(d),
      promote_(2.0 * (1.0 + epsilon) * d),
      demote_(2.0 * d),
      promote_ceil_(CeilSaturated(promote_)),
      demote_ceil_(CeilSaturated(demote_)),
      levels_(levels),
      state_(n),
      level_count_(levels + 1, 0),
      edges_min_level_(levels + 1, 0),
      queued_(n, 0) {
  level_count_[0] = n;
}

void DegreeLevels::PushIfTriggered(NodeId v) {
  if (queued_[v] != 0) return;
  const NodeState& s = state_[v];
  if (PromoteTriggered(s) || DemoteTriggered(s)) {
    queued_[v] = 1;
    work_.push_back(v);
  }
}

uint64_t DegreeLevels::OnInsert(NodeId u, NodeId v,
                                const DynamicAdjacency& adj) {
  NodeState& su = state_[u];
  NodeState& sv = state_[v];
  if (sv.level >= su.level) ++su.up;
  if (sv.level + 1 >= su.level) ++su.near;
  if (su.level >= sv.level) ++sv.up;
  if (su.level + 1 >= sv.level) ++sv.near;
  ++edges_min_level_[std::min(su.level, sv.level)];
  PushIfTriggered(u);
  PushIfTriggered(v);
  if (work_.empty()) return 0;
  return Settle(adj);
}

uint64_t DegreeLevels::OnDelete(NodeId u, NodeId v,
                                const DynamicAdjacency& adj) {
  NodeState& su = state_[u];
  NodeState& sv = state_[v];
  if (sv.level >= su.level) --su.up;
  if (sv.level + 1 >= su.level) --su.near;
  if (su.level >= sv.level) --sv.up;
  if (su.level + 1 >= sv.level) --sv.near;
  --edges_min_level_[std::min(su.level, sv.level)];
  PushIfTriggered(u);
  PushIfTriggered(v);
  if (work_.empty()) return 0;
  return Settle(adj);
}

uint64_t DegreeLevels::Settle(const DynamicAdjacency& adj) {
  uint64_t moves = 0;
  while (!work_.empty()) {
    const NodeId v = work_.back();
    work_.pop_back();
    queued_[v] = 0;
    // Moves are single-level with hysteresis: a fresh promote leaves
    // near_deg = old up_deg >= 2(1+eps)d >= 2d, a fresh demote leaves
    // up_deg = old near_deg < 2d < 2(1+eps)d — so the inner loop can only
    // keep moving in one direction and terminates within `levels_` steps.
    while (true) {
      const NodeState& s = state_[v];
      if (PromoteTriggered(s)) {
        Promote(v, adj);
      } else if (DemoteTriggered(s)) {
        Demote(v, adj);
      } else {
        break;
      }
      ++moves;
    }
  }
  return moves;
}

void DegreeLevels::Promote(NodeId v, const DynamicAdjacency& adj) {
  const uint32_t old = state_[v].level;
  const uint32_t nl = old + 1;
  --level_count_[old];
  ++level_count_[nl];
  state_[v].level = static_cast<uint16_t>(nl);
  uint32_t up = 0;
  uint32_t near = 0;
  const std::span<const NodeId> nb = adj.neighbors(v);
  for (size_t i = 0; i < nb.size(); ++i) {
    // The node states are random 12-byte loads the hardware prefetcher
    // cannot predict; the neighbor list itself is sequential, so feed the
    // prefetcher from a few entries ahead.
    if (i + 8 < nb.size()) __builtin_prefetch(&state_[nb[i + 8]]);
    const NodeId x = nb[i];
    NodeState& sx = state_[x];
    const uint32_t lx = sx.level;
    if (lx >= nl) {
      ++up;
      // The edge's endpoint-level minimum was `old` and is now `nl`.
      --edges_min_level_[old];
      ++edges_min_level_[nl];
    }
    if (lx + 1 >= nl) ++near;
    if (lx == nl) {
      // v rose into x's level: it now counts toward x's up-degree.
      ++sx.up;
      PushIfTriggered(x);
    } else if (lx == nl + 1) {
      // v crossed x's (level - 1) boundary from below.
      ++sx.near;
    }
  }
  state_[v].up = up;
  state_[v].near = near;
}

void DegreeLevels::Demote(NodeId v, const DynamicAdjacency& adj) {
  const uint32_t old = state_[v].level;
  const uint32_t nl = old - 1;
  --level_count_[old];
  ++level_count_[nl];
  state_[v].level = static_cast<uint16_t>(nl);
  uint32_t up = 0;
  uint32_t near = 0;
  const std::span<const NodeId> nb = adj.neighbors(v);
  for (size_t i = 0; i < nb.size(); ++i) {
    if (i + 8 < nb.size()) __builtin_prefetch(&state_[nb[i + 8]]);
    const NodeId x = nb[i];
    NodeState& sx = state_[x];
    const uint32_t lx = sx.level;
    if (lx >= nl) ++up;
    if (lx + 1 >= nl) ++near;
    if (lx >= old) {
      --edges_min_level_[old];
      ++edges_min_level_[nl];
    }
    if (lx == old) {
      // v dropped out of x's level.
      --sx.up;
    } else if (lx == old + 1) {
      // v fell below x's (level - 1) boundary: x may have to follow.
      --sx.near;
      PushIfTriggered(x);
    }
  }
  state_[v].up = up;
  state_[v].near = near;
}

void DegreeLevels::Rebuild(const DynamicAdjacency& adj) {
  const NodeId n = adj.num_nodes();
  for (NodeState& s : state_) s = NodeState{};
  work_.clear();
  std::fill(queued_.begin(), queued_.end(), 0);

  // Static peeling: Z_{i+1} = members of Z_i with deg_{Z_i} above the
  // promote threshold. Once a round promotes everyone, every later round
  // would too — jump those nodes straight to the top level.
  std::vector<NodeId> cur(n);
  std::iota(cur.begin(), cur.end(), NodeId{0});
  std::vector<NodeId> next;
  for (uint32_t i = 0; i < levels_ && !cur.empty(); ++i) {
    next.clear();
    for (NodeId v : cur) {
      uint32_t deg = 0;
      for (NodeId x : adj.neighbors(v)) {
        if (state_[x].level >= i) ++deg;
      }
      if (deg >= promote_ceil_) next.push_back(v);
    }
    if (next.size() == cur.size()) {
      for (NodeId v : cur) state_[v].level = static_cast<uint16_t>(levels_);
      break;
    }
    for (NodeId v : next) state_[v].level = static_cast<uint16_t>(i + 1);
    cur.swap(next);
  }

  RecomputeAggregates(adj);
}

void DegreeLevels::RecomputeAggregates(const DynamicAdjacency& adj) {
  const NodeId n = adj.num_nodes();
  std::fill(level_count_.begin(), level_count_.end(), NodeId{0});
  std::fill(edges_min_level_.begin(), edges_min_level_.end(), EdgeId{0});
  for (NodeId v = 0; v < n; ++v) {
    const uint32_t lv = state_[v].level;
    ++level_count_[lv];
    uint32_t up = 0;
    uint32_t near = 0;
    for (NodeId x : adj.neighbors(v)) {
      const uint32_t lx = state_[x].level;
      if (lx >= lv) ++up;
      if (lx + 1 >= lv) ++near;
      if (x > v) ++edges_min_level_[std::min(lv, lx)];
    }
    state_[v].up = up;
    state_[v].near = near;
  }
}

Status DegreeLevels::RestoreLevels(const DynamicAdjacency& adj,
                                   std::span<const uint16_t> levels) {
  if (levels.size() != state_.size() ||
      adj.num_nodes() != static_cast<NodeId>(state_.size())) {
    return Status::InvalidArgument("level-array size mismatch");
  }
  for (uint16_t l : levels) {
    if (l > levels_) return Status::InvalidArgument("level above the ladder");
  }
  for (size_t v = 0; v < levels.size(); ++v) {
    state_[v] = NodeState{};
    state_[v].level = levels[v];
  }
  work_.clear();
  std::fill(queued_.begin(), queued_.end(), 0);
  RecomputeAggregates(adj);
  return Status::OK();
}

Status DegreeLevels::CheckInvariants(const DynamicAdjacency& adj) const {
  const NodeId n = adj.num_nodes();
  if (static_cast<NodeId>(state_.size()) != n) {
    return Status::Internal("levels: node count mismatch");
  }
  std::vector<NodeId> level_count(levels_ + 1, 0);
  std::vector<EdgeId> edges_min(levels_ + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const NodeState& s = state_[v];
    if (s.level > levels_) {
      return Status::Internal("node " + std::to_string(v) +
                              " above the level ladder");
    }
    ++level_count[s.level];
    uint32_t up = 0;
    uint32_t near = 0;
    for (NodeId x : adj.neighbors(v)) {
      const uint32_t lx = state_[x].level;
      if (lx >= s.level) ++up;
      if (lx + 1 >= s.level) ++near;
      if (x > v) ++edges_min[std::min<uint32_t>(s.level, lx)];
    }
    if (up != s.up) {
      return Status::Internal("node " + std::to_string(v) + ": up_deg " +
                              std::to_string(s.up) + " != recount " +
                              std::to_string(up));
    }
    if (near != s.near) {
      return Status::Internal("node " + std::to_string(v) + ": near_deg " +
                              std::to_string(s.near) + " != recount " +
                              std::to_string(near));
    }
    if (PromoteTriggered(s)) {
      return Status::Internal("node " + std::to_string(v) +
                              " holds an unsettled promote trigger");
    }
    if (DemoteTriggered(s)) {
      return Status::Internal("node " + std::to_string(v) +
                              " holds an unsettled demote trigger");
    }
  }
  for (uint32_t i = 0; i <= levels_; ++i) {
    if (level_count[i] != level_count_[i]) {
      return Status::Internal("level " + std::to_string(i) + ": node count " +
                              std::to_string(level_count_[i]) +
                              " != recount " + std::to_string(level_count[i]));
    }
    if (edges_min[i] != edges_min_level_[i]) {
      return Status::Internal(
          "level " + std::to_string(i) + ": edge minimum count " +
          std::to_string(edges_min_level_[i]) + " != recount " +
          std::to_string(edges_min[i]));
    }
  }
  return Status::OK();
}

DegreeLevels::BestLevel DegreeLevels::FindBestLevel() const {
  BestLevel best;
  NodeId nodes = 0;
  EdgeId edges = 0;
  bool first = true;
  for (uint32_t i = levels_ + 1; i-- > 0;) {
    nodes += level_count_[i];
    edges += edges_min_level_[i];
    if (nodes == 0) continue;
    const double rho =
        static_cast<double>(edges) / static_cast<double>(nodes);
    if (first || rho > best.density) {
      best.density = rho;
      best.level = i;
      best.nodes = nodes;
      best.edges = edges;
      first = false;
    }
  }
  return best;
}

std::vector<NodeId> DegreeLevels::CollectLevelSet(uint32_t level) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < static_cast<NodeId>(state_.size()); ++v) {
    if (state_[v].level >= level) out.push_back(v);
  }
  return out;
}

}  // namespace densest
