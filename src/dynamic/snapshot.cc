#include "dynamic/snapshot.h"

#include <cstdio>
#include <cstring>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace densest {

namespace {

constexpr char kMagic[8] = {'D', 'E', 'N', 'S', 'S', 'N', 'A', 'P'};
// v2: overload-protection counters in the stats block plus the pending
// recompute state (DynamicDensest::OverloadState) after it.
constexpr uint32_t kVersion = 2;

// Fixed 32-byte header in front of the checksummed body.
struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t reserved;
  uint64_t body_size;
  uint64_t checksum;  // FNV-1a-64 over the body bytes
};
static_assert(sizeof(SnapshotHeader) == 32);

uint64_t Fnv1a64(const void* data, size_t bytes) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
void Put(std::string* out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Bounds-checked cursor over the body; every Get fails (instead of
/// reading past the end) on a body that lies about its own layout.
class BodyReader {
 public:
  BodyReader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool GetRaw(void* dst, size_t bytes) {
    if (size_ - pos_ < bytes) return false;
    std::memcpy(dst, data_ + pos_, bytes);
    pos_ += bytes;
    return true;
  }

  bool exhausted() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void PutStats(std::string* body, const DynamicDensestStats& s) {
  Put(body, s.inserts);
  Put(body, s.deletes);
  Put(body, s.ignored);
  Put(body, s.level_moves);
  Put(body, s.recomputes);
  Put(body, s.window_moves);
  Put(body, s.structures_rebuilt);
  Put(body, s.trims_deferred);
  Put(body, s.recomputes_avoided);
  Put(body, s.recomputes_cancelled);
  Put(body, s.stale_answers_served);
  Put(body, s.last_recompute_density);
}

bool GetStats(BodyReader* r, DynamicDensestStats* s) {
  return r->Get(&s->inserts) && r->Get(&s->deletes) && r->Get(&s->ignored) &&
         r->Get(&s->level_moves) && r->Get(&s->recomputes) &&
         r->Get(&s->window_moves) && r->Get(&s->structures_rebuilt) &&
         r->Get(&s->trims_deferred) && r->Get(&s->recomputes_avoided) &&
         r->Get(&s->recomputes_cancelled) && r->Get(&s->stale_answers_served) &&
         r->Get(&s->last_recompute_density);
}

void PutOverload(std::string* body, const DynamicDensest::OverloadState& o) {
  Put(body, static_cast<uint8_t>(o.pending ? 1 : 0));
  Put(body, o.cancel_streak);
  Put(body, o.rearm_at_updates);
  Put(body, o.last_cert_upper);
  Put(body, o.last_cert_inserts);
}

bool GetOverload(BodyReader* r, DynamicDensest::OverloadState* o) {
  uint8_t pending = 0;
  if (!r->Get(&pending) || !r->Get(&o->cancel_streak) ||
      !r->Get(&o->rearm_at_updates) || !r->Get(&o->last_cert_upper) ||
      !r->Get(&o->last_cert_inserts)) {
    return false;
  }
  o->pending = pending != 0;
  return true;
}

}  // namespace

Status WriteSnapshot(const std::string& path, const DynamicDensest& engine,
                     uint64_t cursor) {
  DENSEST_TRACE_SPAN("dynamic.snapshot_write");
  const NodeId n = engine.num_nodes();
  const uint32_t num_slots = static_cast<uint32_t>(engine.num_slots());

  std::string body;
  // Exact body size up front: one allocation instead of doubling growth
  // across a multi-megabyte append sequence.
  body.reserve(32 + sizeof(DynamicDensestStats) + 2 * sizeof(double) +
               size_t{n} * sizeof(uint32_t) +
               2 * size_t{engine.num_edges()} * sizeof(NodeId) +
               size_t{num_slots} * n * sizeof(uint16_t));
  Put(&body, n);
  Put(&body, engine.window_lo());
  Put(&body, num_slots);
  Put(&body, engine.trim_streak());
  Put(&body, cursor);
  Put(&body, engine.num_edges());
  PutStats(&body, engine.stats());
  PutOverload(&body, engine.overload_state());
  // The answer the engine would serve right now — the restore cross-checks
  // its own Query() against these before trusting the state.
  const DynamicDensest::Answer answer = engine.Query();
  Put(&body, answer.density);
  Put(&body, answer.upper_bound);
  // Adjacency VERBATIM: storage order decides how the restored engine
  // evolves, so the neighbor vectors are serialized byte for byte.
  const DynamicAdjacency& adj = engine.adjacency();
  for (NodeId u = 0; u < n; ++u) {
    const std::span<const NodeId> nbrs = adj.neighbors(u);
    Put(&body, static_cast<uint32_t>(nbrs.size()));
    body.append(reinterpret_cast<const char*>(nbrs.data()),
                nbrs.size() * sizeof(NodeId));
  }
  // Per-slot per-node levels; every aggregate is recomputed from these.
  std::vector<uint16_t> levels(n);
  for (uint32_t i = 0; i < num_slots; ++i) {
    const DegreeLevels& slot = engine.slot(i);
    for (NodeId v = 0; v < n; ++v) {
      levels[v] = static_cast<uint16_t>(slot.level(v));
    }
    body.append(reinterpret_cast<const char*>(levels.data()),
                levels.size() * sizeof(uint16_t));
  }

  SnapshotHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.reserved = 0;
  header.body_size = body.size();
  header.checksum = Fnv1a64(body.data(), body.size());

  // Temp file + rename: a crash mid-write leaves the previous snapshot (or
  // nothing) at `path`, never a torn file there.
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    DENSEST_METRIC_COUNTER("dynamic.snapshots_failed").Inc();
    return Status::IOError("cannot create snapshot file: " + tmp);
  }
  bool ok = DENSEST_FAILPOINT("snapshot.write") == FailpointAction::kNone;
  ok = ok && std::fwrite(&header, sizeof(header), 1, f) == 1;
  ok = ok &&
       (body.empty() || std::fwrite(body.data(), body.size(), 1, f) == 1);
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    DENSEST_METRIC_COUNTER("dynamic.snapshots_failed").Inc();
    return Status::IOError("short write on snapshot file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    DENSEST_METRIC_COUNTER("dynamic.snapshots_failed").Inc();
    return Status::IOError("cannot rename snapshot into place: " + path);
  }
  DENSEST_METRIC_COUNTER("dynamic.snapshots_written").Inc();
  return Status::OK();
}

StatusOr<RestoredEngine> ReadSnapshot(const std::string& path,
                                      const DynamicDensestOptions& options) {
  DENSEST_TRACE_SPAN("dynamic.snapshot_read");
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open snapshot file: " + path);
  }
  if (DENSEST_FAILPOINT("snapshot.read") != FailpointAction::kNone) {
    std::fclose(f);
    return Status::IOError("read error (injected): " + path);
  }
  SnapshotHeader header;
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("truncated snapshot header: " + path);
  }
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(f);
    return Status::IOError("not a snapshot file: " + path);
  }
  if (header.version != kVersion) {
    std::fclose(f);
    return Status::IOError("unsupported snapshot version: " + path);
  }
  std::string body(header.body_size, '\0');
  const size_t got =
      body.empty() ? 0 : std::fread(body.data(), 1, body.size(), f);
  // One extra byte probe: trailing garbage means the file is not what the
  // header says it is.
  char probe;
  const bool trailing = std::fread(&probe, 1, 1, f) == 1;
  std::fclose(f);
  if (got != body.size() || trailing) {
    return Status::IOError("truncated snapshot body: " + path);
  }
  if (Fnv1a64(body.data(), body.size()) != header.checksum) {
    return Status::IOError("snapshot checksum mismatch: " + path);
  }

  BodyReader r(body.data(), body.size());
  NodeId n = 0;
  uint32_t lo = 0;
  uint32_t num_slots = 0;
  uint32_t trim_streak = 0;
  uint64_t cursor = 0;
  EdgeId m = 0;
  DynamicDensestStats stats;
  DynamicDensest::OverloadState overload;
  double density = 0;
  double upper_bound = 0;
  if (!r.Get(&n) || !r.Get(&lo) || !r.Get(&num_slots) ||
      !r.Get(&trim_streak) || !r.Get(&cursor) || !r.Get(&m) ||
      !GetStats(&r, &stats) || !GetOverload(&r, &overload) ||
      !r.Get(&density) || !r.Get(&upper_bound)) {
    return Status::IOError("snapshot body too short: " + path);
  }
  std::vector<std::vector<NodeId>> adjacency(n);
  for (NodeId u = 0; u < n; ++u) {
    uint32_t deg = 0;
    if (!r.Get(&deg)) return Status::IOError("snapshot body too short: " + path);
    adjacency[u].resize(deg);
    if (!r.GetRaw(adjacency[u].data(), size_t{deg} * sizeof(NodeId))) {
      return Status::IOError("snapshot body too short: " + path);
    }
  }
  std::vector<std::vector<uint16_t>> slot_levels(num_slots);
  for (uint32_t i = 0; i < num_slots; ++i) {
    slot_levels[i].resize(n);
    if (!r.GetRaw(slot_levels[i].data(), size_t{n} * sizeof(uint16_t))) {
      return Status::IOError("snapshot body too short: " + path);
    }
  }
  if (!r.exhausted()) {
    return Status::IOError("snapshot body has trailing bytes: " + path);
  }

  StatusOr<std::unique_ptr<DynamicDensest>> engine =
      DynamicDensest::FromSnapshotState(n, options, std::move(adjacency), lo,
                                        std::move(slot_levels), trim_streak,
                                        stats, overload);
  if (!engine.ok()) return engine.status();
  // Cross-check the restored engine against the answer the writer was
  // serving: any mismatch means the state and the options disagree (e.g.
  // restored under a different epsilon) — refuse rather than risk serving
  // a wrong density.
  if ((*engine)->num_edges() != m) {
    return Status::InvalidArgument("snapshot edge count mismatch: " + path);
  }
  const DynamicDensest::Answer answer = (*engine)->Query();
  if (std::memcmp(&answer.density, &density, sizeof(double)) != 0 ||
      std::memcmp(&answer.upper_bound, &upper_bound, sizeof(double)) != 0) {
    return Status::InvalidArgument("snapshot answer mismatch: " + path);
  }
  RestoredEngine out;
  out.engine = std::move(*engine);
  out.cursor = cursor;
  DENSEST_METRIC_COUNTER("dynamic.snapshot_restores").Inc();
  return out;
}

}  // namespace densest
