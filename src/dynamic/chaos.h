// Copyright 2026 The densest Authors.
// Randomized chaos/soak harness over the failpoint registry: each schedule
// replays a deterministic sliding-window workload twice — once fault-free
// (the reference) and once under seeded random fault injection with
// kill/snapshot-resume cycles — and demands that the surviving engine is
// bit-identical to the reference and passes every structural invariant
// audit. A schedule that diverges fails loudly with the seed that replays
// it deterministically.
//
// What a schedule injects (all drawn from one seeded Rng):
//   replay.crash          process death between apply runs; recovery reads
//                         the latest snapshot and resumes from its cursor
//                         (or rebuilds from scratch when none is usable)
//   update_stream.read    kind=unavailable: transient faults the stream's
//                         retry-with-backoff heals in-line;
//                         kind=io / kind=short: a dead disk or torn file —
//                         the sticky status kills the replay and recovery
//                         reopens the file and resumes from the snapshot
//   snapshot.write        a failed checkpoint write; replay must degrade
//                         gracefully (correctness never depends on it)
//   snapshot.read         an unreadable snapshot at recovery time; the
//                         restart must degrade to a full replay, never
//                         serve a wrong density
//
// Wall-clock deadlines (DynamicDensestOptions::recompute_deadline_ms) are
// deliberately NOT part of chaos schedules: their firing depends on machine
// speed, which would break the bit-identity oracle. The deadline/overload
// path has its own deterministic unit tests.
//
// The harness owns the process-wide failpoint registry while it runs: it
// clears all armed failpoints between segments and on exit.

#ifndef DENSEST_DYNAMIC_CHAOS_H_
#define DENSEST_DYNAMIC_CHAOS_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "dynamic/dynamic_densest.h"

namespace densest {

/// \brief Knobs for one chaos/soak run.
struct ChaosOptions {
  /// Independent randomized schedules to run. Schedule i is seeded with
  /// `seed + i`, so any failing schedule replays alone via
  /// `--schedules=1 --seed=<seed+i>`.
  uint32_t schedules = 20;
  uint64_t seed = 1;
  /// Workload shape: a sliding window of `window` edges over `edges`
  /// random insertions among `nodes` nodes (inserts + interleaved deletes).
  NodeId nodes = 70;
  EdgeId edges = 1200;
  uint64_t window = 150;
  double epsilon = 0.6;
  /// Band-verification (exact max-flow) + invariant-audit cadence, in
  /// applied updates. Must be >= 1.
  uint64_t checkpoint_every = 300;
  /// Crash-recovery snapshot cadence, in applied updates. Must be >= 1.
  uint64_t snapshot_every = 100;
  /// Upper bound on injected faults per schedule (kills, transient stream
  /// faults, snapshot write/read failures combined). 0 disables injection
  /// — the soak still exercises snapshots, band checks and audits.
  uint32_t max_faults = 6;
  /// Updates pulled per NextBatch in both runs (small values give the
  /// stream-read failpoint more evaluation points).
  size_t batch_size = 64;
  /// Concurrent serving readers per schedule: the chaos run publishes
  /// every settled answer into an epoch-published AnswerPlane
  /// (serve/answer_plane.h) — kills and resumes included, so epochs stay
  /// monotone across recoveries — while this many reader threads
  /// continuously snapshot it. After the schedule every observed snapshot
  /// must (a) match the writer's publication log bit-for-bit (zero torn
  /// reads) and (b) re-derive exactly from the workload prefix it names:
  /// the witnessing set's induced density in that prefix graph equals the
  /// served density and sits under the certified upper bound. 0 turns
  /// concurrent serving off.
  uint32_t reader_threads = 2;
  /// Where the update file and snapshots live ("" = system temp dir).
  std::string scratch_dir;
  /// Per-schedule progress lines go here when non-null.
  std::ostream* log = nullptr;
  /// Periodic-stats seam, mirroring ReplayOptions: after every N completed
  /// schedules, invoke stats_hook with the schedules-done count (0 or no
  /// hook = never). The CLI wires --stats-every to a registry summary line.
  uint64_t stats_every = 0;
  std::function<void(uint32_t)> stats_hook;
};

/// \brief What one schedule did and survived.
struct ChaosScheduleOutcome {
  uint32_t index = 0;
  /// The seed that replays exactly this schedule as schedule #0.
  uint64_t seed = 0;
  uint64_t updates = 0;           ///< workload length (inserts + deletes)
  uint32_t faults_injected = 0;   ///< failpoint arms drawn for this schedule
  uint32_t kills = 0;             ///< replay deaths recovered via restart
  uint32_t full_rebuilds = 0;     ///< recoveries with no usable snapshot
  uint32_t snapshot_read_faults = 0;
  uint64_t band_checks = 0;       ///< exact-flow checkpoints (both runs)
  /// Untorn plane snapshots the reader threads observed and the oracle
  /// verified (log-exact + prefix-derived).
  uint64_t reader_snapshots = 0;
};

/// \brief Aggregate over all schedules.
struct ChaosReport {
  /// False when the library was built with -DDENSEST_FAILPOINTS=OFF: the
  /// run degrades to a fault-free soak (snapshots + band + audits only).
  bool failpoints_compiled_in = false;
  uint32_t schedules = 0;
  uint32_t total_faults = 0;
  uint32_t total_kills = 0;
  uint32_t total_full_rebuilds = 0;
  uint64_t total_band_checks = 0;
  uint64_t total_invariant_audits = 0;
  uint64_t total_reader_snapshots = 0;
  std::vector<ChaosScheduleOutcome> outcomes;
};

/// Runs the harness. Fails (Internal) on the FIRST schedule whose chaos run
/// leaves the certified band, trips a structural invariant, or ends in a
/// state not bit-identical to the uninterrupted reference — the message
/// names the schedule and the seed that replays it.
StatusOr<ChaosReport> RunChaos(const ChaosOptions& options);

}  // namespace densest

#endif  // DENSEST_DYNAMIC_CHAOS_H_
