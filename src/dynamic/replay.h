// Copyright 2026 The densest Authors.
// The replay driver of the dynamic maintenance service: feeds an
// UpdateStream into a DynamicDensest engine at a target rate, issues
// density queries on a schedule, verifies the certified approximation band
// against recomputation checkpoints, and reports update throughput and
// query latency percentiles.

#ifndef DENSEST_DYNAMIC_REPLAY_H_
#define DENSEST_DYNAMIC_REPLAY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/histogram.h"
#include "common/status.h"
#include "core/answer.h"
#include "dynamic/dynamic_densest.h"
#include "stream/update_stream.h"

namespace densest {

/// \brief How a checkpoint recomputes the reference density.
enum class CheckpointMode {
  /// Goldberg's exact max-flow solver: the checkpoint knows rho* exactly,
  /// so the band check is airtight. O(n^2-ish) per checkpoint — for tests
  /// and smoke-scale graphs.
  kExactFlow,
  /// Batch Algorithm 1 (epsilon 0): a 2-approximation lower bound
  /// rho_b with rho_b <= rho* <= 2 rho_b; the band check widens
  /// accordingly. Cheap enough for large replays.
  kBatchAlgorithm1,
};

/// \brief Knobs for one replay.
struct ReplayOptions {
  /// Target update feed rate (updates/second); 0 = unthrottled.
  double target_updates_per_sec = 0;
  /// Issue (and time) a density query every N applied updates (0 = only
  /// the final query).
  uint64_t query_every = 1024;
  /// Verify the certified band against a recomputation every N applied
  /// updates (0 = never).
  uint64_t checkpoint_every = 0;
  CheckpointMode checkpoint_mode = CheckpointMode::kExactFlow;
  /// Updates pulled from the stream per NextBatch call.
  size_t batch_size = 4096;
  /// Write a crash-recovery snapshot (dynamic/snapshot.h) every N applied
  /// updates (0 = never; requires snapshot_path). Snapshot time is
  /// reported separately and never counted into apply throughput.
  uint64_t snapshot_every = 0;
  /// Where snapshots go (atomically overwritten each time).
  std::string snapshot_path;
  /// Skip this many updates from the (reset) stream before applying — the
  /// resume cursor of a restored snapshot. Snapshot cursors are absolute:
  /// they include this offset.
  uint64_t skip_updates = 0;
  /// Optional cooperative cancellation (see common/cancel.h): polled once
  /// per apply run (at most ~1k updates between polls). A tripped token
  /// aborts the replay with kCancelled/kDeadlineExceeded; the engine is
  /// left settled at the last applied update. Null = never cancelled.
  const CancelToken* cancel = nullptr;
  /// Debug audit: run DynamicDensest::CheckInvariants() at every
  /// checkpoint boundary (requires checkpoint_every != 0) and fail the
  /// replay on the first violation. O(slots * (n + m)) per checkpoint —
  /// for tests and the chaos harness.
  bool check_invariants = false;
  /// Epoch-publication seam for concurrent serving (serve/answer_plane.h
  /// is the production sink): when non-null, the replay publishes the
  /// settled answer + witnessing node set + absolute update position
  /// before the first apply, after qualifying apply runs, and once more
  /// at the end — always from the writer thread, so the sink's
  /// single-writer contract holds. Each publication costs one Query()
  /// plus an O(n) DensestNodes() walk; publish_every bounds how often.
  AnswerSink* publish = nullptr;
  /// Publish every N applied updates (0 = after every apply run, i.e. at
  /// most every ~1k updates). Larger values amortize the O(n) witness
  /// collection over more updates; readers just see epochs advance less
  /// often.
  uint64_t publish_every = 0;
  /// Periodic-stats seam: every N applied updates, invoke stats_hook with
  /// the applied-update count, from the writer thread between apply runs
  /// (0 or no hook = never). The CLI wires --stats-every to this and
  /// prints a registry summary line (obs/exporter.h) from the hook.
  uint64_t stats_every = 0;
  std::function<void(uint64_t)> stats_hook;
};

/// \brief One band-verification point.
struct ReplayCheckpoint {
  uint64_t update_index = 0;   ///< applied updates when taken
  double maintained = 0;       ///< engine's served density
  double upper_bound = 0;      ///< engine's certified upper bound
  double reference = 0;        ///< recomputed density (exact or batch)
  bool in_band = true;
};

/// \brief What one replay measured.
struct [[nodiscard]] ReplayReport {
  uint64_t updates = 0;  ///< updates read from the stream (incl. ignored)
  double wall_seconds = 0;
  double updates_per_sec = 0;
  uint64_t queries = 0;
  Histogram query_latency_us;  ///< per-query latency, microseconds
  std::vector<ReplayCheckpoint> checkpoints;
  /// Max over checkpoints of reference / maintained (1 = the maintained
  /// density matched the recomputation; bounded by the certified band).
  double max_observed_error = 0;
  /// False if any checkpoint left the certified band.
  bool band_ok = true;
  double final_density = 0;
  double final_upper_bound = 0;
  /// False when the final answer was served from a degraded window
  /// (DynamicFallback::kNever only): final_upper_bound is meaningless and
  /// final_density is best-effort.
  bool final_certified = true;
  EdgeId final_edges = 0;
  DynamicDensestStats engine_stats;
  /// Snapshots successfully written / failed this replay. A failed write
  /// degrades gracefully: the replay continues (a checkpoint is a restart
  /// optimization, not correctness) and the failure is reported here.
  uint64_t snapshots_written = 0;
  uint64_t snapshots_failed = 0;
  std::string last_snapshot_error;
  /// Wall time spent writing snapshots — kept OUT of updates_per_sec so
  /// the snapshot cadence's overhead is directly observable against it.
  double snapshot_seconds = 0;
};

/// Replays `updates` into `engine`. Fails when the update stream reports a
/// sticky IO error (a truncated replay must not masquerade as a finished
/// one) or when a checkpoint recomputation fails.
StatusOr<ReplayReport> ReplayUpdates(UpdateStream& updates,
                                     DynamicDensest& engine,
                                     const ReplayOptions& options);

}  // namespace densest

#endif  // DENSEST_DYNAMIC_REPLAY_H_
