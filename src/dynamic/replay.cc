#include "dynamic/replay.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/failpoint.h"
#include "common/timer.h"
#include "core/algorithm1.h"
#include "dynamic/snapshot.h"
#include "flow/goldberg.h"
#include "graph/undirected_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/memory_stream.h"

namespace densest {

namespace {

/// Relative slack for the band comparisons: the maintained aggregates are
/// integer edge/node counts, but the reference densities come through
/// floating-point division.
constexpr double kRelTol = 1e-9;

bool LeqWithTol(double a, double b) { return a <= b * (1.0 + kRelTol) + 1e-12; }

/// Recomputes the reference density of the engine's live edge set and
/// checks the certified sandwich around it.
Status TakeCheckpoint(DynamicDensest& engine, const ReplayOptions& options,
                      uint64_t update_index, ReplayReport& report) {
  DENSEST_TRACE_SPAN("dynamic.checkpoint");
  ReplayCheckpoint cp;
  cp.update_index = update_index;
  const DynamicDensest::Answer answer = engine.Query();
  cp.maintained = answer.density;
  cp.upper_bound = answer.upper_bound;

  EdgeList edges = engine.CurrentEdges();
  if (edges.empty()) {
    cp.reference = 0;
    cp.in_band = answer.certified && answer.density == 0;
  } else if (options.checkpoint_mode == CheckpointMode::kExactFlow) {
    UndirectedGraph g = UndirectedGraph::FromEdgeList(edges);
    StatusOr<ExactDensestResult> exact = ExactDensestSubgraph(g);
    if (!exact.ok()) return exact.status();
    cp.reference = exact->density;
    // The maintained density is a real induced density (<= rho*) and the
    // certificate promises rho* < upper_bound.
    cp.in_band = answer.certified &&
                 LeqWithTol(cp.maintained, cp.reference) &&
                 LeqWithTol(cp.reference, cp.upper_bound);
  } else {
    EdgeListStream stream(edges);
    Algorithm1Options opt;
    opt.epsilon = 0.0;
    opt.record_trace = false;
    StatusOr<UndirectedDensestResult> batch = RunAlgorithm1(stream, opt);
    if (!batch.ok()) return batch.status();
    cp.reference = batch->density;
    // rho_b <= rho* <= 2 rho_b widens both sides of the sandwich.
    cp.in_band = answer.certified &&
                 LeqWithTol(cp.maintained, 2.0 * cp.reference) &&
                 LeqWithTol(cp.reference, answer.upper_bound);
  }

  if (cp.maintained > 0 && cp.reference > 0) {
    report.max_observed_error = std::max(report.max_observed_error,
                                         cp.reference / cp.maintained);
  }
  if (!cp.in_band) report.band_ok = false;
  report.checkpoints.push_back(cp);
  return Status::OK();
}

void TimedQuery(DynamicDensest& engine, ReplayReport& report) {
  WallTimer timer;
  const DynamicDensest::Answer answer = engine.Query();
  const double us = timer.ElapsedSeconds() * 1e6;
  report.query_latency_us.Add(us);
  DENSEST_METRIC_HISTOGRAM("dynamic.query_latency_us").Observe(us);
  ++report.queries;
  // The answer itself is intentionally unused: the cadence exists to
  // measure serving latency under load, not to sample densities.
  (void)answer;
}

}  // namespace

StatusOr<ReplayReport> ReplayUpdates(UpdateStream& updates,
                                     DynamicDensest& engine,
                                     const ReplayOptions& options) {
  ReplayReport report;
  const size_t batch_cap = std::max<size_t>(1, options.batch_size);
  std::vector<EdgeUpdate> batch(batch_cap);
  updates.Reset();
  if (options.skip_updates > 0) {
    // Resume from a snapshot cursor: fast-forward the stream to it.
    const uint64_t skipped = updates.Skip(options.skip_updates);
    if (Status s = updates.status(); !s.ok()) return s;
    if (skipped != options.skip_updates) {
      return Status::IOError("update stream shorter than resume cursor");
    }
  }

  // Throttling cadence: re-check the pace every ~1k updates.
  constexpr uint64_t kPaceEvery = 1024;
  WallTimer wall;
  double apply_seconds = 0;
  uint64_t count = 0;

  auto until_boundary = [&](uint64_t every) -> uint64_t {
    if (every == 0) return UINT64_MAX;
    return every - (count % every);
  };
  // Serving-plane publication, always from this (writer) thread. The
  // position is absolute (resume cursor + applied count), so answers
  // published across a crash/resume name prefixes of the same stream.
  auto publish_answer = [&]() {
    if (options.publish == nullptr) return;
    DENSEST_TRACE_SPAN("dynamic.publish");
    const DynamicDensest::Answer answer = engine.Query();
    DENSEST_METRIC_GAUGE("dynamic.density").Set(answer.density);
    options.publish->Publish(answer, engine.DensestNodes(),
                             options.skip_updates + count);
  };
  // Publish the pre-replay state too: a restored engine starts serving
  // its snapshot answer before the first new update lands.
  publish_answer();

  while (true) {
    const size_t got = updates.NextBatch(batch.data(), batch_cap);
    if (got == 0) break;
    size_t i = 0;
    while (i < got) {
      // Apply in uninterrupted runs up to the next query / checkpoint /
      // pacing boundary, so apply throughput is timed without the cost of
      // serving mixed in.
      uint64_t run = std::min<uint64_t>(got - i, until_boundary(kPaceEvery));
      run = std::min(run, until_boundary(options.query_every));
      run = std::min(run, until_boundary(options.checkpoint_every));
      run = std::min(run, until_boundary(options.snapshot_every));
      run = std::min(run, until_boundary(options.stats_every));
      if (options.publish != nullptr) {
        run = std::min(run, until_boundary(options.publish_every));
      }
      WallTimer apply_timer;
      engine.ApplyBatch(
          std::span<const EdgeUpdate>(batch.data() + i, run));
      apply_seconds += apply_timer.ElapsedSeconds();
      i += run;
      count += run;
      // Publish the settled state for concurrent readers before anything
      // else observes it (queries and checkpoints below then agree with
      // what the plane serves).
      if (options.publish != nullptr &&
          (options.publish_every == 0 ||
           count % options.publish_every == 0)) {
        publish_answer();
      }
      // One poll per apply run (the engine settles every update before
      // returning, so the abort leaves it consistent and queryable).
      if (Status c = CheckCancel(options.cancel); !c.ok()) return c;
      if (options.query_every != 0 && count % options.query_every == 0) {
        TimedQuery(engine, report);
      }
      if (options.checkpoint_every != 0 &&
          count % options.checkpoint_every == 0) {
        if (options.check_invariants) {
          if (Status s = engine.CheckInvariants(); !s.ok()) return s;
        }
        if (Status s = TakeCheckpoint(engine, options, count, report);
            !s.ok()) {
          return s;
        }
      }
      if (options.snapshot_every != 0 && count % options.snapshot_every == 0 &&
          !options.snapshot_path.empty()) {
        WallTimer snap_timer;
        const Status s = WriteSnapshot(options.snapshot_path, engine,
                                       options.skip_updates + count);
        report.snapshot_seconds += snap_timer.ElapsedSeconds();
        if (s.ok()) {
          ++report.snapshots_written;
        } else {
          // Graceful degradation: a lost checkpoint only makes a future
          // restart more expensive; the replay itself stays correct.
          ++report.snapshots_failed;
          report.last_snapshot_error = s.ToString();
        }
      }
      if (options.stats_every != 0 && options.stats_hook &&
          count % options.stats_every == 0) {
        options.stats_hook(count);
      }
      // Crash-injection hook for the recovery tests: fired, it aborts the
      // replay mid-stream exactly like a process death would (everything
      // since the last snapshot is lost).
      if (DENSEST_FAILPOINT("replay.crash") != FailpointAction::kNone) {
        return Status::IOError("replay crashed (injected)");
      }
      if (options.target_updates_per_sec > 0 && count % kPaceEvery == 0) {
        const double expected =
            static_cast<double>(count) / options.target_updates_per_sec;
        const double ahead = expected - wall.ElapsedSeconds();
        if (ahead > 0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(ahead));
        }
      }
    }
  }
  // A disk-backed stream signals mid-replay failure by ending early;
  // reporting a density maintained over a truncated update sequence would
  // be the dynamic version of the truncated-pass bug.
  if (Status s = updates.status(); !s.ok()) return s;

  report.updates = count;
  report.wall_seconds = wall.ElapsedSeconds();
  report.updates_per_sec =
      apply_seconds > 0 ? static_cast<double>(count) / apply_seconds : 0;

  // Final publication: the plane's last epoch always carries the fully
  // settled end-of-replay answer, whatever cadence the loop used.
  publish_answer();

  TimedQuery(engine, report);
  const DynamicDensest::Answer final_answer = engine.Query();
  report.final_density = final_answer.density;
  report.final_upper_bound = final_answer.upper_bound;
  report.final_certified = final_answer.certified;
  report.final_edges = engine.num_edges();
  report.engine_stats = engine.stats();
  return report;
}

}  // namespace densest
