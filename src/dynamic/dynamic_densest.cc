#include "dynamic/dynamic_densest.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "common/cancel.h"
#include "core/algorithm1.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/memory_stream.h"

namespace densest {

namespace {

/// Bottom of the threshold grid. With promote = 2(1+eps)d0 <= 1 for
/// eps <= 1, any node with an edge climbs off level 0 at slot 0, so the
/// slot-0 certificate is nonempty exactly when the graph has an edge.
constexpr double kBaseThreshold = 0.25;

}  // namespace

StatusOr<std::unique_ptr<DynamicDensest>> DynamicDensest::Create(
    NodeId n, const DynamicDensestOptions& options) {
  if (n == 0) return Status::InvalidArgument("graph has no nodes");
  if (!(options.epsilon >= 0.01 && options.epsilon <= 1.0)) {
    return Status::InvalidArgument("epsilon must be in [0.01, 1]");
  }
  if (options.recompute_epsilon < 0) {
    return Status::InvalidArgument("recompute_epsilon must be >= 0");
  }
  if (options.trim_hysteresis == 0) {
    return Status::InvalidArgument("trim_hysteresis must be >= 1");
  }
  if (options.recompute_deadline_ms < 0) {
    return Status::InvalidArgument("recompute_deadline_ms must be >= 0");
  }
  if (options.recompute_rearm_updates == 0) {
    return Status::InvalidArgument("recompute_rearm_updates must be >= 1");
  }
  return std::unique_ptr<DynamicDensest>(new DynamicDensest(n, options));
}

StatusOr<std::unique_ptr<DynamicDensest>> DynamicDensest::FromSnapshotState(
    NodeId n, const DynamicDensestOptions& options,
    std::vector<std::vector<NodeId>> adjacency, uint32_t lo,
    std::vector<std::vector<uint16_t>> slot_levels, uint32_t trim_streak,
    const DynamicDensestStats& stats, const OverloadState& overload) {
  StatusOr<std::unique_ptr<DynamicDensest>> created = Create(n, options);
  if (!created.ok()) return created.status();
  DynamicDensest& e = **created;
  Status s = e.adj_.RestoreAdjacency(std::move(adjacency));
  if (!s.ok()) return s;
  if (slot_levels.empty()) {
    return Status::InvalidArgument("snapshot maintains no slots");
  }
  const uint64_t hi = lo + static_cast<uint64_t>(slot_levels.size()) - 1;
  if (hi > e.max_slot_) {
    return Status::InvalidArgument("snapshot window above the threshold grid");
  }
  e.lo_ = lo;
  e.slots_.clear();
  e.slots_.reserve(slot_levels.size());
  for (size_t i = 0; i < slot_levels.size(); ++i) {
    e.slots_.emplace_back(n, e.ThresholdOf(lo + static_cast<uint32_t>(i)),
                          options.epsilon, e.levels_);
    s = e.slots_.back().RestoreLevels(e.adj_, slot_levels[i]);
    if (!s.ok()) return s;
  }
  e.trim_streak_ = trim_streak;
  e.stats_ = stats;
  // The stale tally lives in its own relaxed atomic (see stats()); the
  // plain field in stats_ stays zero so the merge never double-counts.
  e.stale_answers_served_.store(stats.stale_answers_served,
                                std::memory_order_relaxed);
  e.stats_.stale_answers_served = 0;
  e.recompute_pending_ = overload.pending;
  e.cancel_streak_ = overload.cancel_streak;
  e.rearm_at_updates_ = overload.rearm_at_updates;
  e.last_cert_upper_ = overload.last_cert_upper;
  e.last_cert_inserts_ = overload.last_cert_inserts;
  return created;
}

DynamicDensest::DynamicDensest(NodeId n, const DynamicDensestOptions& options)
    : options_(options), adj_(n) {
  const double ln_ratio = std::log1p(options_.epsilon);
  // (1+eps)^levels > n makes the pigeonhole certificate exact: a nonempty
  // top level forces some Z_i to shrink by less than (1+eps).
  levels_ = static_cast<uint32_t>(
                std::floor(std::log(static_cast<double>(n)) / ln_ratio)) +
            1;
  // Top of the grid: the first threshold certainly above (1+eps) rho*_max,
  // where every top level is provably empty without maintaining it.
  const double cap = (1.0 + options_.epsilon) * static_cast<double>(n) / 2.0;
  double d = kBaseThreshold;
  uint32_t k = 0;
  while (d < cap) {
    d *= 1.0 + options_.epsilon;
    ++k;
  }
  max_slot_ = k + 1;
  // How far above the window's low end the certifying slot may sit before
  // a re-center pays off: the gap between a density's guaranteed-nonempty
  // slot (rho / 2(1+eps)) and the highest slot its certificate can reach
  // ((1+eps) rho) is log_{1+eps} 2(1+eps)^2 slots; beyond that plus the
  // radius, the window is dragging low slots the certificate no longer
  // needs — and low slots are the expensive ones to maintain (every node
  // above their threshold climbs the full ladder).
  trim_span_ = static_cast<uint32_t>(std::ceil(
                   std::log(2.0 * (1.0 + options_.epsilon) *
                            (1.0 + options_.epsilon)) /
                   ln_ratio)) +
               options_.window_radius;

  // Start narrow: the first certificate degrade recomputes over a tiny
  // edge set and re-centers for free, so booting with a tall window would
  // only pay extra low-slot maintenance during the initial ramp.
  lo_ = 0;
  const uint32_t hi = std::min(max_slot_, options_.window_radius + 1);
  slots_.reserve(hi + 1);
  for (uint32_t s = 0; s <= hi; ++s) {
    slots_.emplace_back(n, ThresholdOf(s), options_.epsilon, levels_);
  }
}

double DynamicDensest::ThresholdOf(uint32_t slot) const {
  return kBaseThreshold *
         std::pow(1.0 + options_.epsilon, static_cast<double>(slot));
}

uint32_t DynamicDensest::SlotBelow(double rho) const {
  if (!(rho > kBaseThreshold)) return 0;
  const uint32_t k = static_cast<uint32_t>(std::floor(
      std::log(rho / kBaseThreshold) / std::log1p(options_.epsilon)));
  return std::min(k, max_slot_);
}

int DynamicDensest::FindCertifyingSlot() const {
  for (size_t i = slots_.size(); i-- > 0;) {
    if (slots_[i].top_count() > 0) return static_cast<int>(lo_ + i);
  }
  return -1;
}

bool DynamicDensest::Degraded(int k_star) const {
  if (k_star < 0) return lo_ > 0;
  const uint32_t hi = window_hi();
  // A certificate at the top slot has no maintained empty neighbor above
  // it — unless the window already touches the analytic top of the grid,
  // where emptiness needs no structure.
  return static_cast<uint32_t>(k_star) == hi && hi < max_slot_;
}

void DynamicDensest::Apply(const EdgeUpdate& update) {
  const NodeId u = update.u;
  const NodeId v = update.v;
  if (update.is_insert()) {
    if (!adj_.Insert(u, v)) {
      ++stats_.ignored;
      return;
    }
    ++stats_.inserts;
    for (DegreeLevels& slot : slots_) {
      stats_.level_moves += slot.OnInsert(u, v, adj_);
    }
  } else {
    if (!adj_.Erase(u, v)) {
      ++stats_.ignored;
      return;
    }
    ++stats_.deletes;
    for (DegreeLevels& slot : slots_) {
      stats_.level_moves += slot.OnDelete(u, v, adj_);
    }
  }
  MaybeFallback();
}

void DynamicDensest::ApplyBatch(std::span<const EdgeUpdate> batch) {
  DENSEST_TRACE_SPAN("dynamic.apply_batch");
  const DynamicDensestStats before = stats_;
  for (const EdgeUpdate& update : batch) Apply(update);
  // Registry mirror of the per-run struct, diffed once per batch: the
  // per-update path (>1M updates/s) stays free of atomics, and the
  // cross-command metrics plane still sees every applied batch. Callers
  // driving Apply() directly (tests, mostly) are visible through stats().
  const DynamicDensestStats& after = stats_;
  DENSEST_METRIC_COUNTER("dynamic.inserts").Inc(after.inserts - before.inserts);
  DENSEST_METRIC_COUNTER("dynamic.deletes").Inc(after.deletes - before.deletes);
  DENSEST_METRIC_COUNTER("dynamic.ignored").Inc(after.ignored - before.ignored);
  DENSEST_METRIC_COUNTER("dynamic.level_moves")
      .Inc(after.level_moves - before.level_moves);
  DENSEST_METRIC_COUNTER("dynamic.recomputes")
      .Inc(after.recomputes - before.recomputes);
  DENSEST_METRIC_COUNTER("dynamic.recomputes_cancelled")
      .Inc(after.recomputes_cancelled - before.recomputes_cancelled);
  DENSEST_METRIC_COUNTER("dynamic.window_moves")
      .Inc(after.window_moves - before.window_moves);
}

void DynamicDensest::MaybeFallback() {
  if (options_.fallback == DynamicFallback::kNever) return;
  // Overload protection: while a deadline-cancelled recompute is pending,
  // absorb updates (serving the widened stale band from Query) instead of
  // re-attempting the slow path on every one. Deletions can heal the
  // degradation on their own, so a restored certificate falls through to
  // the normal path below, which clears the pending state.
  if (recompute_pending_ &&
      stats_.inserts + stats_.deletes < rearm_at_updates_ &&
      Degraded(FindCertifyingSlot())) {
    return;
  }
  // Each pass either clears the degradation or moves the window strictly
  // toward it; the guard only bounds pathological numerics.
  for (uint32_t guard = 0; guard <= max_slot_ + 2; ++guard) {
    const int k_star = FindCertifyingSlot();
    if (!Degraded(k_star)) {
      // A live certificate: remember its upper bound so a future
      // deadline-cancelled recompute has a base to widen from, and clear
      // any pending slow path — the window serves again.
      if (k_star >= 0) {
        last_cert_upper_ = 2.0 * (1.0 + options_.epsilon) *
                           ThresholdOf(static_cast<uint32_t>(k_star) + 1);
        last_cert_inserts_ = stats_.inserts;
      }
      recompute_pending_ = false;
      cancel_streak_ = 0;
      // Valid certificate — but when it has drifted far above the
      // window's low end, the window is dragging low slots it no longer
      // serves from, and low slots are the expensive ones to maintain
      // (every node above their threshold climbs the full ladder). Trim
      // the bottom to a fall-cushion below k*: free — every kept slot
      // stays live, nothing is rebuilt, and if density later falls
      // through the cushion the ordinary fallback re-centers downward.
      // Hysteresis: a density hovering at a slot boundary flips this
      // condition on and off every few updates, and each trim drops low
      // slots that the very next dip re-enters at recompute+rebuild cost.
      // Trim only once the drift has held for trim_hysteresis consecutive
      // updates; a streak that dies earlier was a transient excursion
      // whose trim (and follow-up recompute) we avoided.
      if (k_star >= 0 && static_cast<uint32_t>(k_star) > lo_ + trim_span_) {
        if (++trim_streak_ >= options_.trim_hysteresis) {
          const uint32_t cushion = trim_span_ > 2 ? trim_span_ - 2 : 0;
          MoveWindow(static_cast<uint32_t>(k_star) - cushion, window_hi());
        } else {
          ++stats_.trims_deferred;
        }
      } else if (trim_streak_ > 0) {
        trim_streak_ = 0;
        ++stats_.recomputes_avoided;
      }
      return;
    }
    const uint32_t width = static_cast<uint32_t>(slots_.size());
    const uint32_t radius = options_.window_radius;
    if (options_.fallback == DynamicFallback::kRecompute) {
      // The batch slow path: Algorithm 1 over a frozen snapshot of the
      // live edges, through the fused engine.
      EdgeList snapshot = adj_.ToEdgeList();
      if (snapshot.empty()) {
        MoveWindow(0, std::min(max_slot_, radius + 1));
        continue;
      }
      if (engine_ == nullptr) {
        engine_ = std::make_unique<MultiRunEngine>(options_.engine_options);
      }
      EdgeListStream stream(snapshot);
      Algorithm1Options ropt;
      ropt.epsilon = options_.recompute_epsilon;
      ropt.record_trace = false;
      StatusOr<UndirectedDensestResult> r = [&]() {
        DENSEST_TRACE_SPAN("dynamic.recompute");
        if (options_.recompute_deadline_ms > 0) {
          // The overload budget, doubled per consecutive cancellation so a
          // graph that has genuinely outgrown the configured budget still
          // converges instead of re-shedding the same work forever. The
          // token lives on this frame only — RecomputeUndirected returns
          // before it dies.
          CancelToken deadline = CancelToken::WithDeadlineAfterMs(
              options_.recompute_deadline_ms *
              static_cast<double>(uint64_t{1} << cancel_streak_));
          ropt.cancel = &deadline;
          return engine_->RecomputeUndirected(stream, ropt);
        }
        return engine_->RecomputeUndirected(stream, ropt);
      }();
      if (!r.ok() && r.status().IsCancellation()) {
        // The recompute blew its deadline. Keep serving the last
        // certificate widened to the pending band (see Query), absorb
        // recompute_rearm_updates more updates before retrying, and do
        // NOT fall through to the kRebuildOnly slide — its rebuilds scan
        // the same oversized edge set the deadline just shed.
        ++stats_.recomputes_cancelled;
        recompute_pending_ = true;
        if (cancel_streak_ < 20) ++cancel_streak_;
        rearm_at_updates_ = stats_.inserts + stats_.deletes +
                            options_.recompute_rearm_updates;
        return;
      }
      // In-memory streams cannot fail; a defensive slide keeps the engine
      // live if they somehow do.
      if (r.ok()) {
        recompute_pending_ = false;
        cancel_streak_ = 0;
        const double rho = r->density;
        ++stats_.recomputes;
        stats_.last_recompute_density = rho;
        // The recompute sandwiches rho* in [rho, (2+2eps_r) rho]; pick the
        // window that provably certifies anything in that range, plus the
        // configured slack on both sides.
        const double eps = options_.epsilon;
        const double lower_need = rho / (2.0 * (1.0 + eps));
        const double upper_need =
            (1.0 + eps) * (2.0 + 2.0 * options_.recompute_epsilon) * rho;
        // The low end needs no extra radius: klo is itself a guaranteed
        // cushion (its top level is provably nonempty at rho_b), sitting
        // ~log_{1+eps} 2(1+eps)^2 slots below where the certificate will
        // land. Low slots are also the expensive ones to maintain — every
        // node above their threshold climbs all the way — so the window
        // extends only upward, where slots are nearly free.
        const uint32_t new_lo = SlotBelow(lower_need);
        const uint32_t khi = std::min(max_slot_, SlotBelow(upper_need) + 1);
        const uint32_t new_hi =
            std::min(max_slot_, std::max(khi + radius, new_lo));
        // The recompute names this window as the best placement; if it is
        // already the current one, there is nothing better to move to
        // (e.g. a drift whose batch density still maps to the same slots).
        if (new_lo == lo_ && new_hi == window_hi()) return;
        MoveWindow(new_lo, new_hi);
        continue;
      }
    }
    // kRebuildOnly (and the defensive recompute-failure path): slide one
    // radius toward the degradation.
    const uint32_t shift = radius + 1;
    uint32_t new_lo;
    uint32_t new_hi;
    if (k_star >= 0) {
      new_hi = std::min(max_slot_, window_hi() + shift);
      new_lo = new_hi >= width - 1 ? new_hi - (width - 1) : 0;
    } else {
      new_lo = lo_ > shift ? lo_ - shift : 0;
      new_hi = std::min(max_slot_, new_lo + width - 1);
    }
    MoveWindow(new_lo, new_hi);
  }
}

void DynamicDensest::MoveWindow(uint32_t new_lo, uint32_t new_hi) {
  const uint32_t old_hi = window_hi();
  std::vector<DegreeLevels> next;
  next.reserve(new_hi - new_lo + 1);
  for (uint32_t s = new_lo; s <= new_hi; ++s) {
    if (s >= lo_ && s <= old_hi) {
      // Structures already live stay live — their state is maintained
      // continuously and needs no rebuild.
      next.push_back(std::move(slots_[s - lo_]));
    } else {
      next.emplace_back(adj_.num_nodes(), ThresholdOf(s), options_.epsilon,
                        levels_);
      next.back().Rebuild(adj_);
      ++stats_.structures_rebuilt;
    }
  }
  slots_ = std::move(next);
  lo_ = new_lo;
  trim_streak_ = 0;  // the drift condition is relative to the new low end
  ++stats_.window_moves;
}

DynamicDensest::Answer DynamicDensest::Query() const {
  Answer answer;
  const int k_star = FindCertifyingSlot();
  if (k_star < 0 && lo_ == 0 && adj_.num_edges() == 0) {
    // Empty graph: rho* = 0, certified trivially.
    return answer;
  }
  if (k_star >= 0 && !Degraded(k_star)) {
    const DegreeLevels& slot = slots_[k_star - lo_];
    const DegreeLevels::BestLevel best = slot.FindBestLevel();
    answer.density = best.density;
    answer.size = best.nodes;
    answer.upper_bound = 2.0 * (1.0 + options_.epsilon) *
                         ThresholdOf(static_cast<uint32_t>(k_star) + 1);
    answer.certified = true;
    return answer;
  }
  if (recompute_pending_) {
    // Overload path: a deadline-cancelled recompute is pending. Serve the
    // densest maintained level set under the last certificate widened by
    // the growth bound — rho* rises by at most 1/2 per insertion (the new
    // optimum gains at most the inserted edge over a set of size >= 2)
    // and never rises on a deletion — so the band stays sound, just
    // loosening by 1/2 per insert until the recompute re-arms and lands.
    answer.certified = true;
    answer.stale = true;
    answer.upper_bound =
        last_cert_upper_ +
        0.5 * static_cast<double>(stats_.inserts - last_cert_inserts_);
    for (const DegreeLevels& slot : slots_) {
      const DegreeLevels::BestLevel best = slot.FindBestLevel();
      if (best.density > answer.density) {
        answer.density = best.density;
        answer.size = best.nodes;
      }
    }
    stale_answers_served_.fetch_add(1, std::memory_order_relaxed);
    DENSEST_METRIC_COUNTER("dynamic.stale_answers_served").Inc();
    return answer;
  }
  // Degraded window (DynamicFallback::kNever): best effort over whatever
  // is maintained, flagged uncertified; upper_bound is meaningless.
  answer.certified = false;
  for (const DegreeLevels& slot : slots_) {
    const DegreeLevels::BestLevel best = slot.FindBestLevel();
    if (best.density > answer.density) {
      answer.density = best.density;
      answer.size = best.nodes;
    }
  }
  return answer;
}

std::vector<NodeId> DynamicDensest::DensestNodes() const {
  const int k_star = FindCertifyingSlot();
  if (k_star < 0) return {};
  const DegreeLevels* best_slot = &slots_[k_star - lo_];
  DegreeLevels::BestLevel best = best_slot->FindBestLevel();
  if (Degraded(k_star)) {
    for (const DegreeLevels& slot : slots_) {
      const DegreeLevels::BestLevel b = slot.FindBestLevel();
      if (b.density > best.density) {
        best = b;
        best_slot = &slot;
      }
    }
  }
  return best_slot->CollectLevelSet(best.level);
}

double DynamicDensest::ApproxBand() const {
  const double r = 1.0 + options_.epsilon;
  return 2.0 * r * r * r;
}

Status DynamicDensest::CheckInvariants() const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (Status s = slots_[i].CheckInvariants(adj_); !s.ok()) {
      return Status::Internal("slot " + std::to_string(lo_ + i) + ": " +
                              s.message());
    }
  }
  return Status::OK();
}

}  // namespace densest
