#include "dynamic/chaos.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "common/retry.h"
#include "dynamic/replay.h"
#include "dynamic/snapshot.h"
#include "gen/erdos_renyi.h"
#include "serve/answer_plane.h"
#include "stream/memory_stream.h"
#include "stream/update_stream.h"

namespace densest {

namespace {

/// Clears the registry on every exit path: a failed schedule must not leave
/// armed failpoints behind for the caller's next IO operation to trip over.
struct FailpointGuard {
  ~FailpointGuard() { Failpoints::Instance().ClearAll(); }
};

/// The same deterministic insert+delete workload shape the crash-recovery
/// tests use: a sliding window over a random edge sequence, materialized so
/// the reference and chaos runs see identical updates.
std::vector<EdgeUpdate> MakeWorkload(NodeId n, EdgeId m, uint64_t window,
                                     uint64_t seed) {
  EdgeList edges = ErdosRenyiGnm(n, m, seed);
  EdgeListStream base(edges);
  SlidingWindowUpdateStream stream(base, window);
  stream.Reset();
  std::vector<EdgeUpdate> out;
  EdgeUpdate u;
  while (stream.Next(&u)) out.push_back(u);
  return out;
}

Status ScheduleError(uint32_t index, uint64_t seed, const std::string& what) {
  return Status::Internal(
      "chaos schedule #" + std::to_string(index) + ": " + what +
      " (replay deterministically with --schedules=1 --seed=" +
      std::to_string(seed) + ")");
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Bit-exact equality of everything two engines can disagree on — the same
/// criteria the snapshot round-trip tests enforce. Stats match too: a
/// restored snapshot carries the writer's counters and the re-applied
/// suffix regenerates the rest deterministically.
Status CompareEngines(const DynamicDensest& ref, const DynamicDensest& got) {
  const DynamicDensest::Answer qa = ref.Query();
  const DynamicDensest::Answer qb = got.Query();
  if (!SameBits(qa.density, qb.density)) {
    return Status::Internal("final density diverged: " +
                            std::to_string(qa.density) + " vs " +
                            std::to_string(qb.density));
  }
  if (!SameBits(qa.upper_bound, qb.upper_bound)) {
    return Status::Internal("final upper bound diverged: " +
                            std::to_string(qa.upper_bound) + " vs " +
                            std::to_string(qb.upper_bound));
  }
  if (qa.size != qb.size || qa.certified != qb.certified ||
      qa.stale != qb.stale) {
    return Status::Internal("final answer shape diverged");
  }
  if (ref.DensestNodes() != got.DensestNodes()) {
    return Status::Internal("densest node sets diverged");
  }
  if (ref.num_edges() != got.num_edges()) {
    return Status::Internal("live edge counts diverged: " +
                            std::to_string(ref.num_edges()) + " vs " +
                            std::to_string(got.num_edges()));
  }
  if (ref.window_lo() != got.window_lo() ||
      ref.window_hi() != got.window_hi() ||
      ref.trim_streak() != got.trim_streak()) {
    return Status::Internal("threshold window placement diverged");
  }
  const DynamicDensestStats& sa = ref.stats();
  const DynamicDensestStats& sb = got.stats();
  if (sa.inserts != sb.inserts || sa.deletes != sb.deletes ||
      sa.ignored != sb.ignored || sa.level_moves != sb.level_moves ||
      sa.recomputes != sb.recomputes || sa.window_moves != sb.window_moves ||
      sa.structures_rebuilt != sb.structures_rebuilt ||
      sa.trims_deferred != sb.trims_deferred ||
      sa.recomputes_avoided != sb.recomputes_avoided ||
      !SameBits(sa.last_recompute_density, sb.last_recompute_density)) {
    return Status::Internal("maintenance stats diverged");
  }
  return Status::OK();
}

Status Arm(const std::string& name, const std::string& spec) {
  return Failpoints::Instance().Set(name, spec);
}

/// An observed reader snapshot must be one writer publication verbatim:
/// the epoch it carries names exactly one entry of the writer log, and
/// every field — scalars bit-for-bit, membership list element-for-element
/// — must match it. Any difference is a torn read the seqlock failed to
/// catch.
Status VerifyObservedSnapshot(const PlaneSnapshot& got,
                              const std::vector<PlaneSnapshot>& log) {
  const uint64_t e = got.answer.epoch;
  if (e == 0 || e > log.size()) {
    return Status::Internal("reader observed epoch " + std::to_string(e) +
                            " but the writer published " +
                            std::to_string(log.size()));
  }
  const PlaneSnapshot& want = log[e - 1];
  if (!SameBits(want.answer.density, got.answer.density) ||
      !SameBits(want.answer.upper_bound, got.answer.upper_bound) ||
      want.answer.size != got.answer.size ||
      want.answer.certified != got.answer.certified ||
      want.answer.stale != got.answer.stale ||
      want.prefix_updates != got.prefix_updates ||
      want.members != got.members) {
    return Status::Internal("torn read: snapshot at epoch " +
                            std::to_string(e) +
                            " differs from the writer's publication");
  }
  return Status::OK();
}

/// The end-to-end serving guarantee: re-derive the live edge set after the
/// first `prefix_updates` workload updates (mirroring DynamicAdjacency's
/// ignore rules: no self-loops, duplicate inserts and absent deletes are
/// no-ops) and check the observed answer against it — the witnessing
/// set's exact induced density equals the served density bit-for-bit and
/// sits under the certified upper bound.
Status VerifyObservedPrefix(const PlaneSnapshot& snap,
                            const std::vector<EdgeUpdate>& workload) {
  if (snap.prefix_updates > workload.size()) {
    return Status::Internal(
        "observed snapshot names prefix " +
        std::to_string(snap.prefix_updates) + " beyond the " +
        std::to_string(workload.size()) + "-update workload");
  }
  std::set<std::pair<NodeId, NodeId>> live;
  for (uint64_t i = 0; i < snap.prefix_updates; ++i) {
    const EdgeUpdate& u = workload[i];
    if (u.u == u.v) continue;
    const std::pair<NodeId, NodeId> key{std::min(u.u, u.v),
                                        std::max(u.u, u.v)};
    if (u.is_insert()) {
      live.insert(key);
    } else {
      live.erase(key);
    }
  }
  const std::vector<NodeId>& s = snap.members;
  EdgeId induced = 0;
  for (const auto& [a, b] : live) {
    if (std::binary_search(s.begin(), s.end(), a) &&
        std::binary_search(s.begin(), s.end(), b)) {
      ++induced;
    }
  }
  const double density =
      s.empty() ? 0.0
                : static_cast<double>(induced) / static_cast<double>(s.size());
  if (!SameBits(density, snap.answer.density)) {
    return Status::Internal(
        "served density at epoch " + std::to_string(snap.answer.epoch) +
        " (" + std::to_string(snap.answer.density) +
        ") is not the witnessing set's induced density at prefix " +
        std::to_string(snap.prefix_updates) + " (" + std::to_string(density) +
        ")");
  }
  if (snap.answer.certified && density > snap.answer.upper_bound &&
      induced > 0) {
    return Status::Internal("served density exceeds its certified bound at epoch " +
                            std::to_string(snap.answer.epoch));
  }
  return Status::OK();
}

}  // namespace

StatusOr<ChaosReport> RunChaos(const ChaosOptions& options) {
  if (options.schedules == 0) {
    return Status::InvalidArgument("chaos: schedules must be >= 1");
  }
  if (options.nodes < 2 || options.edges == 0 || options.window == 0) {
    return Status::InvalidArgument(
        "chaos: need nodes >= 2, edges >= 1, window >= 1");
  }
  if (options.checkpoint_every == 0 || options.snapshot_every == 0 ||
      options.batch_size == 0) {
    return Status::InvalidArgument(
        "chaos: checkpoint_every, snapshot_every and batch_size must be >= 1");
  }
  const std::string scratch =
      options.scratch_dir.empty()
          ? std::filesystem::temp_directory_path().string()
          : options.scratch_dir;

  ChaosReport report;
  report.failpoints_compiled_in = Failpoints::compiled_in();

  FailpointGuard guard;
  for (uint32_t index = 0; index < options.schedules; ++index) {
    // seed + index, so schedule i reruns alone as schedule #0 of a
    // 1-schedule invocation seeded with this value.
    const uint64_t seed = options.seed + index;
    Rng rng(Mix64(seed));

    ChaosScheduleOutcome outcome;
    outcome.index = index;
    outcome.seed = seed;

    const std::vector<EdgeUpdate> workload =
        MakeWorkload(options.nodes, options.edges, options.window,
                     rng.NextU64());
    outcome.updates = workload.size();

    const std::string prefix =
        (std::filesystem::path(scratch) /
         ("densest_chaos_" + std::to_string(seed)))
            .string();
    const std::string update_path = prefix + ".updates";
    const std::string snapshot_path = prefix + ".snap";
    std::remove(snapshot_path.c_str());

    Failpoints::Instance().ClearAll();
    if (Status s = WriteBinaryUpdateFile(update_path, options.nodes, workload);
        !s.ok()) {
      return s;
    }

    DynamicDensestOptions opt;
    opt.epsilon = options.epsilon;

    ReplayOptions base;
    base.query_every = 0;
    base.batch_size = options.batch_size;
    base.checkpoint_every = options.checkpoint_every;
    base.checkpoint_mode = CheckpointMode::kExactFlow;
    base.check_invariants = true;

    // Reference: one uninterrupted fault-free run over the whole workload.
    std::unique_ptr<DynamicDensest> reference;
    {
      StatusOr<std::unique_ptr<DynamicDensest>> created =
          DynamicDensest::Create(options.nodes, opt);
      if (!created.ok()) return created.status();
      reference = std::move(*created);
      MemoryUpdateStream mem(workload, options.nodes);
      StatusOr<ReplayReport> r = ReplayUpdates(mem, *reference, base);
      if (!r.ok()) {
        return ScheduleError(index, seed,
                             "reference run failed: " + r.status().ToString());
      }
      if (!r->band_ok) {
        return ScheduleError(index, seed,
                             "reference run left the certified band");
      }
      outcome.band_checks += r->checkpoints.size();
      report.total_invariant_audits += r->checkpoints.size();
    }

    // Chaos run: the identical updates from disk, random faults armed per
    // segment, every kill recovered the way a restarted process would.
    std::unique_ptr<DynamicDensest> engine;
    {
      StatusOr<std::unique_ptr<DynamicDensest>> created =
          DynamicDensest::Create(options.nodes, opt);
      if (!created.ok()) return created.status();
      engine = std::move(*created);
    }

    // The serving plane lives across every chaos segment (one process
    // restart does not reset the serving tier), so epochs stay monotone
    // through kills and resumes. Readers snapshot it the whole time and
    // record each new epoch they see; the oracle below replays their
    // observations against the writer log and the workload.
    std::unique_ptr<AnswerPlane> plane;
    std::vector<std::thread> readers;
    std::vector<std::vector<PlaneSnapshot>> observed(options.reader_threads);
    std::atomic<bool> readers_stop{false};
    if (options.reader_threads > 0) {
      plane = std::make_unique<AnswerPlane>(options.nodes);
      plane->EnableWriterLog();
      for (uint32_t t = 0; t < options.reader_threads; ++t) {
        readers.emplace_back([&, t] {
          std::vector<PlaneSnapshot>& mine = observed[t];
          while (!readers_stop.load(std::memory_order_acquire)) {
            PlaneSnapshot snap = plane->ReadSnapshot();
            if (snap.answer.epoch != 0 &&
                (mine.empty() ||
                 mine.back().answer.epoch != snap.answer.epoch)) {
              mine.push_back(std::move(snap));
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        });
      }
    }
    // Joins on every exit path: the threads capture locals by reference.
    struct ReaderJoin {
      std::atomic<bool>& stop;
      std::vector<std::thread>& threads;
      ~ReaderJoin() {
        stop.store(true, std::memory_order_release);
        for (std::thread& t : threads) {
          if (t.joinable()) t.join();
        }
      }
    } reader_join{readers_stop, readers};

    uint64_t cursor = 0;
    uint32_t faults_left =
        Failpoints::compiled_in() ? options.max_faults : 0;
    bool finished = false;
    while (!finished) {
      // A fresh stream per segment: a dead-disk fault poisons the previous
      // one with a sticky status, exactly like a real restart would see.
      StatusOr<std::unique_ptr<BinaryFileUpdateStream>> stream =
          BinaryFileUpdateStream::Open(update_path);
      if (!stream.ok()) return stream.status();
      RetryPolicy retry;
      retry.max_attempts = 4;
      retry.base_delay_ms = 0.01;  // real sleeps; keep the soak fast
      retry.max_delay_ms = 0.05;
      retry.jitter_seed = rng.NextU64() | 1;  // decorrelated jitter path
      (*stream)->set_retry_policy(retry);

      const uint64_t remaining = workload.size() - cursor;
      // Evaluation-count estimates for after=N draws: the read failpoint
      // fires once per NextBatch, the crash failpoint once per apply run
      // (>= batches, since runs split at checkpoint/snapshot boundaries).
      const uint64_t est_batches = remaining / options.batch_size + 1;
      const uint64_t est_snaps = remaining / options.snapshot_every + 1;
      // Only an armed kill may abort this segment; any other failure is a
      // genuine bug, never something to silently "recover" from.
      bool kill_armed = false;
      if (faults_left > 0 && rng.Bernoulli(0.85)) {
        Status armed = Status::OK();
        switch (rng.UniformInt(0, 3)) {
          case 0:  // process death between apply runs
            armed = Arm("replay.crash",
                        "after=" + std::to_string(rng.UniformU64(est_batches)) +
                            ",times=1");
            kill_armed = true;
            break;
          case 1:  // dead disk under the update stream: sticky IOError
            armed = Arm("update_stream.read",
                        "after=" + std::to_string(rng.UniformU64(est_batches)) +
                            ",times=1,kind=io");
            kill_armed = true;
            break;
          case 2:  // torn update file: short read -> sticky IOError
            armed = Arm("update_stream.read",
                        "after=" + std::to_string(rng.UniformU64(est_batches)) +
                            ",times=1,kind=short");
            kill_armed = true;
            break;
          default:  // transient stream fault; retry-with-backoff heals it
                    // in-line (times < max_attempts), no kill
            armed = Arm("update_stream.read",
                        "after=" + std::to_string(rng.UniformU64(est_batches)) +
                            ",times=" + std::to_string(rng.UniformInt(1, 3)) +
                            ",kind=unavailable");
            break;
        }
        if (!armed.ok()) return armed;
        ++outcome.faults_injected;
        --faults_left;
      }
      if (faults_left > 0 && rng.Bernoulli(0.4)) {
        // A lost checkpoint write: replay must degrade gracefully and only
        // a later restart gets more expensive.
        if (Status s =
                Arm("snapshot.write",
                    "after=" + std::to_string(rng.UniformU64(est_snaps)) +
                        ",times=1");
            !s.ok()) {
          return s;
        }
        ++outcome.faults_injected;
        --faults_left;
      }

      ReplayOptions ropt = base;
      ropt.snapshot_every = options.snapshot_every;
      ropt.snapshot_path = snapshot_path;
      ropt.skip_updates = cursor;
      ropt.publish = plane.get();
      StatusOr<ReplayReport> r = ReplayUpdates(**stream, *engine, ropt);
      Failpoints::Instance().ClearAll();
      if (r.ok()) {
        if (!r->band_ok) {
          return ScheduleError(index, seed,
                               "chaos run left the certified band");
        }
        if (cursor + r->updates != workload.size()) {
          return ScheduleError(index, seed, "chaos run ended short");
        }
        outcome.band_checks += r->checkpoints.size();
        report.total_invariant_audits += r->checkpoints.size();
        finished = true;
      } else if (kill_armed &&
                 (r.status().code() == Status::Code::kIOError ||
                  r.status().code() == Status::Code::kUnavailable)) {
        ++outcome.kills;
        // Sometimes the snapshot itself is unreadable at the worst moment.
        if (faults_left > 0 && rng.Bernoulli(0.3)) {
          if (Status s = Arm("snapshot.read", "times=1"); !s.ok()) return s;
          ++outcome.faults_injected;
          ++outcome.snapshot_read_faults;
          --faults_left;
        }
        StatusOr<RestoredEngine> restored = ReadSnapshot(snapshot_path, opt);
        Failpoints::Instance().ClearAll();
        if (restored.ok()) {
          engine = std::move(restored->engine);
          cursor = restored->cursor;
        } else {
          // No usable snapshot: degrade to a full replay from scratch.
          StatusOr<std::unique_ptr<DynamicDensest>> fresh =
              DynamicDensest::Create(options.nodes, opt);
          if (!fresh.ok()) return fresh.status();
          engine = std::move(*fresh);
          cursor = 0;
          ++outcome.full_rebuilds;
        }
      } else {
        return ScheduleError(index, seed,
                             "chaos run failed: " + r.status().ToString());
      }
    }

    // Serving oracle: stop the readers, then hold every snapshot they
    // observed against (a) the writer's publication log — bit-for-bit, so
    // any torn read fails loudly — and (b) an independent re-derivation
    // from the workload prefix the snapshot names. Each distinct epoch is
    // re-derived once; the log match runs on every observation.
    if (plane != nullptr) {
      readers_stop.store(true, std::memory_order_release);
      for (std::thread& t : readers) {
        if (t.joinable()) t.join();
      }
      const std::vector<PlaneSnapshot>& log = plane->writer_log();
      std::set<uint64_t> derived_epochs;
      for (const std::vector<PlaneSnapshot>& mine : observed) {
        for (const PlaneSnapshot& snap : mine) {
          if (Status s = VerifyObservedSnapshot(snap, log); !s.ok()) {
            return ScheduleError(index, seed, s.message());
          }
          ++outcome.reader_snapshots;
          if (derived_epochs.insert(snap.answer.epoch).second) {
            if (Status s = VerifyObservedPrefix(snap, workload); !s.ok()) {
              return ScheduleError(index, seed, s.message());
            }
          }
        }
      }
    }

    // The oracle: the survivor must be indistinguishable from the engine
    // that never saw a fault, and structurally sound on top of it.
    if (Status s = engine->CheckInvariants(); !s.ok()) {
      return ScheduleError(index, seed,
                           "post-run invariant violation: " + s.message());
    }
    ++report.total_invariant_audits;
    if (Status s = CompareEngines(*reference, *engine); !s.ok()) {
      return ScheduleError(index, seed, s.message());
    }

    std::remove(update_path.c_str());
    std::remove(snapshot_path.c_str());

    if (options.log != nullptr) {
      *options.log << "schedule #" << index << " seed=" << seed << ": "
                   << outcome.updates << " updates, "
                   << outcome.faults_injected << " faults, " << outcome.kills
                   << " kills (" << outcome.full_rebuilds
                   << " full rebuilds), " << outcome.band_checks
                   << " band checks, " << outcome.reader_snapshots
                   << " reader snapshots — identical to reference\n";
    }
    ++report.schedules;
    report.total_faults += outcome.faults_injected;
    report.total_kills += outcome.kills;
    report.total_full_rebuilds += outcome.full_rebuilds;
    report.total_band_checks += outcome.band_checks;
    report.total_reader_snapshots += outcome.reader_snapshots;
    report.outcomes.push_back(outcome);
    if (options.stats_every != 0 && options.stats_hook &&
        report.schedules % options.stats_every == 0) {
      options.stats_hook(report.schedules);
    }
  }
  return report;
}

}  // namespace densest
