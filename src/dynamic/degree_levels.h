// Copyright 2026 The densest Authors.
// The level/bucket state behind the incremental densest-subgraph engine:
// the dynamic graph itself (adjacency + a flat edge-presence set) and one
// Bhattacharya-style degree-level decomposition per density threshold
// (arXiv:1504.02268).
//
// For a threshold d and slack parameter eps, a DegreeLevels structure
// partitions the nodes into levels 0..L (L ~ log_{1+eps} n). Writing
// Z_i = {v : level(v) >= i}, it maintains two invariants after every
// update settles:
//
//   (I1, promote) no node v with level(v) < L has
//                 deg_{Z_level(v)}(v) >= 2(1+eps)d   — else it moves up;
//   (I2, demote)  every node v with level(v) > 0 has
//                 deg_{Z_{level(v)-1}}(v) >= 2d      — else it moves down.
//
// These give the two certificates the engine serves:
//   * Z_L == empty  =>  rho*(G) < 2(1+eps)d      (the densest subgraph,
//     whose min degree is >= rho*, would survive every level);
//   * Z_L != empty  =>  some Z_i has rho(Z_i) > d/(1+eps)  (pigeonhole:
//     some level shrinks by less than (1+eps), and every node above it
//     carries >= 2d edges into it).
//
// The hysteresis between the promote (2(1+eps)d) and demote (2d)
// thresholds is what makes single-level moves terminate and keeps the
// amortized update cost poly-logarithmic: a freshly moved node is strictly
// inside both bounds, so it cannot oscillate.
//
// Each node carries two exact counters, updated in O(1) per incident
// update and O(deg) per level move:
//   up_deg(v)   = #neighbors at level >= level(v)      (deg_{Z_level})
//   near_deg(v) = #neighbors at level >= level(v) - 1  (deg_{Z_{level-1}})
// Both counters and the level live in ONE packed per-node record: the
// engine maintains a dozen of these structures per update, and the hot
// no-move path touches exactly one cache line per structure per endpoint.

#ifndef DENSEST_DYNAMIC_DEGREE_LEVELS_H_
#define DENSEST_DYNAMIC_DEGREE_LEVELS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/edge_list.h"
#include "graph/types.h"

namespace densest {

/// \brief Open-addressing hash set of undirected edge keys (canonical
/// u < v packed into one uint64). Linear probing with backward-shift
/// deletion, so load stays tombstone-free under heavy churn — the
/// edge-presence test is on the path of every update the service applies.
class EdgeKeySet {
 public:
  EdgeKeySet();

  /// Canonical key of the undirected edge {u, v} (requires u != v).
  static uint64_t Key(NodeId u, NodeId v) {
    const NodeId lo = u < v ? u : v;
    const NodeId hi = u < v ? v : u;
    return (static_cast<uint64_t>(lo) << 32) | hi;
  }

  bool Contains(uint64_t key) const;
  /// Inserts `key`; false if already present.
  bool Insert(uint64_t key);
  /// Erases `key`; false if absent.
  bool Erase(uint64_t key);
  uint64_t size() const { return size_; }

 private:
  // lo < hi <= 0xffffffff in every valid key, so a key whose low word is
  // all-ones can never occur and serves as the empty-slot sentinel.
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  size_t IdealSlot(uint64_t key) const;
  void Grow();

  std::vector<uint64_t> slots_;
  uint64_t size_ = 0;
  size_t mask_ = 0;
};

/// \brief The mutable graph the service maintains: per-node neighbor
/// vectors plus the EdgeKeySet that makes it a simple graph (duplicate
/// inserts and deletes of absent edges are rejected, not applied twice).
class DynamicAdjacency {
 public:
  explicit DynamicAdjacency(NodeId n) : adj_(n) {}

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }
  EdgeId num_edges() const { return m_; }

  /// Adds {u, v}; false (and no change) when the edge is already present,
  /// a self-loop, or out of the node range.
  bool Insert(NodeId u, NodeId v);
  /// Removes {u, v}; false (and no change) when absent.
  bool Erase(NodeId u, NodeId v);
  bool Contains(NodeId u, NodeId v) const {
    if (u == v || u >= num_nodes() || v >= num_nodes()) return false;
    return present_.Contains(EdgeKeySet::Key(u, v));
  }

  std::span<const NodeId> neighbors(NodeId u) const { return adj_[u]; }
  uint32_t degree(NodeId u) const {
    return static_cast<uint32_t>(adj_[u].size());
  }

  /// Snapshot of the current edge set (each edge once, u < v) — what the
  /// recompute fallback and the exactness checkpoints run on.
  EdgeList ToEdgeList() const;

  /// Replaces the whole adjacency with `lists` VERBATIM — per-node
  /// neighbor-vector order included. Order matters: Erase swap-removes and
  /// the level structures iterate neighbor lists in storage order, so a
  /// restored engine only evolves bit-identically to the snapshotted one
  /// if the vectors match byte for byte, not merely as sets. Rebuilds the
  /// presence set and edge count; fails with InvalidArgument on self-loops,
  /// out-of-range ids, duplicates, or an asymmetric adjacency.
  Status RestoreAdjacency(std::vector<std::vector<NodeId>> lists);

 private:
  std::vector<std::vector<NodeId>> adj_;
  EdgeKeySet present_;
  EdgeId m_ = 0;
};

/// \brief One degree-level decomposition for one density threshold.
///
/// The structure never owns the graph: every mutation call names the
/// DynamicAdjacency (already updated for inserts/deletes) it should read
/// neighbor lists from. All K structures of the engine's threshold window
/// share that one adjacency.
class DegreeLevels {
 public:
  /// Decomposition for threshold `d` over `n` nodes with `levels` levels
  /// (the engine sizes levels so (1+eps)^levels > n).
  DegreeLevels(NodeId n, double d, double epsilon, uint32_t levels);

  double threshold() const { return d_; }
  uint32_t levels() const { return levels_; }
  /// |Z_L|: nonempty certifies rho* > d/(1+eps) somewhere below; empty
  /// certifies rho* < 2(1+eps)d.
  NodeId top_count() const { return level_count_[levels_]; }

  /// Applies one edge update. The adjacency must ALREADY contain (for
  /// OnInsert) / no longer contain (for OnDelete) the edge. Settles every
  /// cascade before returning, so the invariants hold at every instant a
  /// query can observe. Returns the number of level moves performed.
  uint64_t OnInsert(NodeId u, NodeId v, const DynamicAdjacency& adj);
  uint64_t OnDelete(NodeId u, NodeId v, const DynamicAdjacency& adj);

  /// Rebuilds the decomposition from scratch over the adjacency's current
  /// edge set (the static peeling construction; O(levels * m) worst case).
  /// Used when the engine's threshold window slides onto this slot.
  void Rebuild(const DynamicAdjacency& adj);

  /// Restores the per-node levels VERBATIM from a snapshot and recomputes
  /// every aggregate (counters, level counts, edge minima) from them plus
  /// the adjacency. The input must be a settled state over exactly `adj`
  /// (which a snapshot of a settled engine always is); fails with
  /// InvalidArgument on a level above the ladder or a size mismatch.
  Status RestoreLevels(const DynamicAdjacency& adj,
                       std::span<const uint16_t> levels);

  /// Brute-force audit of the settled state against `adj`: recounts every
  /// node's up/near counters, the per-level node counts, and the per-level
  /// edge minima from scratch, and verifies no node holds a pending
  /// promote/demote trigger (a settled structure has none). O(n + m) —
  /// for tests and the chaos harness, never the update path. Returns
  /// Internal naming the first violation found.
  Status CheckInvariants(const DynamicAdjacency& adj) const;

  /// Densest level set: max over i of rho(Z_i), with the attaining i.
  /// O(levels); reads only maintained aggregates.
  struct BestLevel {
    double density = 0;
    uint32_t level = 0;
    NodeId nodes = 0;
    EdgeId edges = 0;
  };
  BestLevel FindBestLevel() const;

  /// Members of Z_i (ascending ids); O(n).
  std::vector<NodeId> CollectLevelSet(uint32_t level) const;

  /// Node's current level (tests and the engine's introspection).
  uint32_t level(NodeId v) const { return state_[v].level; }
  /// Maintained counters (exposed so tests can cross-check them against a
  /// brute-force recount; see the class comment for their definitions).
  uint32_t up_deg(NodeId v) const { return state_[v].up; }
  uint32_t near_deg(NodeId v) const { return state_[v].near; }

 private:
  /// All mutable per-node state of one structure, packed so the hot
  /// no-move path (bump two counters, check two triggers) costs one cache
  /// line per endpoint.
  struct NodeState {
    uint32_t up = 0;
    uint32_t near = 0;
    uint16_t level = 0;
  };

  /// Recomputes up/near counters, level counts and edge minima from the
  /// current levels + adjacency (the shared tail of Rebuild and
  /// RestoreLevels — both are pure functions of that pair).
  void RecomputeAggregates(const DynamicAdjacency& adj);
  /// Moves one level up/down, rescanning v's neighborhood to refresh both
  /// counters and patching the neighbors' counters and the per-level edge
  /// aggregates.
  void Promote(NodeId v, const DynamicAdjacency& adj);
  void Demote(NodeId v, const DynamicAdjacency& adj);
  /// Drains the dirty worklist until both invariants hold everywhere.
  uint64_t Settle(const DynamicAdjacency& adj);
  void PushIfTriggered(NodeId v);
  bool PromoteTriggered(const NodeState& s) const {
    return s.level < levels_ && s.up >= promote_ceil_;
  }
  bool DemoteTriggered(const NodeState& s) const {
    return s.level > 0 && s.near < demote_ceil_;
  }

  double d_;
  double promote_;  // 2(1+eps)d
  double demote_;   // 2d
  /// Integer forms of the thresholds: for integer counters c,
  /// c >= promote_ <=> c >= ceil(promote_) and c < demote_ <=>
  /// c < ceil(demote_) — the hot trigger checks stay in uint32.
  uint32_t promote_ceil_;
  uint32_t demote_ceil_;
  uint32_t levels_;
  std::vector<NodeState> state_;
  /// Nodes at exactly level i.
  std::vector<NodeId> level_count_;
  /// Edges whose endpoint-level minimum is exactly i; suffix sums give
  /// |E(Z_i)| in O(levels) at query time.
  std::vector<EdgeId> edges_min_level_;
  /// Dirty worklist scratch (LIFO; deterministic order).
  std::vector<NodeId> work_;
  std::vector<uint8_t> queued_;
};

}  // namespace densest

#endif  // DENSEST_DYNAMIC_DEGREE_LEVELS_H_
