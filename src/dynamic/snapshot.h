// Copyright 2026 The densest Authors.
// Crash-safe checkpoint/restore for the dynamic maintenance service.
//
// A snapshot captures the engine's ENTIRE mutable state — the adjacency
// verbatim (neighbor-vector order included; see
// DynamicAdjacency::RestoreAdjacency), the per-slot per-node levels, the
// window placement, the hysteresis streak, the accumulated stats — plus
// the position in the update stream it was taken at. Restoring and
// resuming the stream from that cursor therefore evolves bit-identically
// to a run that never stopped.
//
// The file is versioned and checksummed (FNV-1a-64 over the body) and
// written atomically (temp file + rename), so a crash mid-write leaves
// either the previous snapshot or none — never a torn one that parses. A
// torn, corrupted or wrong-version file fails with IOError and the caller
// degrades to a full rebuild; a snapshot can make restart cheaper, never
// the served densities wrong.

#ifndef DENSEST_DYNAMIC_SNAPSHOT_H_
#define DENSEST_DYNAMIC_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "dynamic/dynamic_densest.h"

namespace densest {

/// \brief Atomically writes the engine's state to `path`. `cursor` is the
/// number of updates the engine has consumed from its stream — the offset
/// a restored run resumes from. Fails with IOError on any write problem
/// (the target file is untouched; at worst a *.tmp sibling is left behind).
Status WriteSnapshot(const std::string& path, const DynamicDensest& engine,
                     uint64_t cursor);

/// \brief A restored engine plus the stream position to resume from.
struct [[nodiscard]] RestoredEngine {
  std::unique_ptr<DynamicDensest> engine;
  uint64_t cursor = 0;
};

/// \brief Reads `path` and reconstructs the engine under `options` (which
/// must match the options of the run that wrote the snapshot — epsilon and
/// window shape are not stored, they are configuration). Fails with
/// IOError on a missing, torn, corrupted or wrong-version file and with
/// InvalidArgument when the decoded state is internally inconsistent; in
/// either case the caller falls back to replaying from scratch.
StatusOr<RestoredEngine> ReadSnapshot(const std::string& path,
                                      const DynamicDensestOptions& options);

}  // namespace densest

#endif  // DENSEST_DYNAMIC_SNAPSHOT_H_
