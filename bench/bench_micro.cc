// Microbenchmarks (google-benchmark) of the core primitives: the per-pass
// streaming scan, the removal sweep, Count-Sketch updates/queries, the
// MapReduce degree job, k-core decomposition, and Dinic on the Goldberg
// network.

#include <benchmark/benchmark.h>

#include "core/algorithm1.h"
#include "core/charikar.h"
#include "core/kcore.h"
#include "core/peel_state.h"
#include "flow/goldberg.h"
#include "gen/chung_lu.h"
#include "gen/erdos_renyi.h"
#include "graph/subgraph.h"
#include "mapreduce/graph_jobs.h"
#include "sketch/count_sketch.h"
#include "stream/memory_stream.h"

namespace {

using namespace densest;

const UndirectedGraph& TestGraph() {
  static const UndirectedGraph* g = [] {
    ChungLuOptions cl;
    cl.num_nodes = 50000;
    cl.num_edges = 250000;
    // lint:allow(naked-new) — leaked benchmark fixture
    return new UndirectedGraph(UndirectedGraph::FromEdgeList(ChungLu(cl, 7)));
  }();
  return *g;
}

void BM_StreamingPass(benchmark::State& state) {
  const UndirectedGraph& g = TestGraph();
  UndirectedGraphStream stream(g);
  NodeSet alive(g.num_nodes(), true);
  std::vector<double> degrees(g.num_nodes());
  for (auto _ : state) {
    auto r = RunUndirectedPass(stream, alive, degrees);
    benchmark::DoNotOptimize(r.weight);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_StreamingPass);

void BM_Algorithm1FullRun(benchmark::State& state) {
  const UndirectedGraph& g = TestGraph();
  Algorithm1Options opt;
  opt.epsilon = static_cast<double>(state.range(0)) / 10.0;
  opt.record_trace = false;
  for (auto _ : state) {
    auto r = RunAlgorithm1(g, opt);
    benchmark::DoNotOptimize(r->density);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Algorithm1FullRun)->Arg(0)->Arg(5)->Arg(20);

void BM_CharikarPeel(benchmark::State& state) {
  const UndirectedGraph& g = TestGraph();
  for (auto _ : state) {
    CharikarResult r = CharikarPeel(g);
    benchmark::DoNotOptimize(r.best.density);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CharikarPeel);

void BM_KCoreDecomposition(benchmark::State& state) {
  const UndirectedGraph& g = TestGraph();
  for (auto _ : state) {
    CoreDecomposition dec = KCoreDecomposition(g);
    benchmark::DoNotOptimize(dec.degeneracy);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_KCoreDecomposition);

void BM_CountSketchUpdate(benchmark::State& state) {
  auto sketch = CountSketch::Create(
      {.tables = 5, .buckets = static_cast<int>(state.range(0))}, 3);
  uint32_t x = 0;
  for (auto _ : state) {
    sketch->Update(x++ & 0xFFFFF, 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchUpdate)->Arg(1024)->Arg(30000);

void BM_CountSketchEstimate(benchmark::State& state) {
  auto sketch = CountSketch::Create({.tables = 5, .buckets = 30000}, 3);
  for (uint32_t x = 0; x < 100000; ++x) sketch->Update(x, 1.0);
  uint32_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch->Estimate(x++ & 0xFFFFF));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchEstimate);

void BM_MrDegreeJob(benchmark::State& state) {
  static MrEdges edges = [] {
    EdgeList el = ErdosRenyiGnm(20000, 100000, 5);
    return ToMrEdges(el.edges());
  }();
  MapReduceEnv env;
  for (auto _ : state) {
    auto degrees = MrDegreeJob(env, edges);
    benchmark::DoNotOptimize(degrees.size());
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_MrDegreeJob);

void BM_ExactFlowSolve(benchmark::State& state) {
  static const UndirectedGraph* g = [] {
    ChungLuOptions cl;
    cl.num_nodes = 5000;
    cl.num_edges = 25000;
    // lint:allow(naked-new) — leaked benchmark fixture
    return new UndirectedGraph(UndirectedGraph::FromEdgeList(ChungLu(cl, 9)));
  }();
  for (auto _ : state) {
    auto r = ExactDensestSubgraph(*g);
    benchmark::DoNotOptimize(r->density);
  }
  state.SetItemsProcessed(state.iterations() * g->num_edges());
}
BENCHMARK(BM_ExactFlowSolve);

void BM_NodeSetSweep(benchmark::State& state) {
  NodeSet s(1000000, true);
  for (auto _ : state) {
    uint64_t count = 0;
    for (NodeId u = 0; u < s.universe_size(); ++u) {
      count += s.Contains(u);
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000000);
}
BENCHMARK(BM_NodeSetSweep);

}  // namespace

BENCHMARK_MAIN();
