// Copyright 2026 The densest Authors.
// Shared helpers for the reproduction harness binaries: banner printing,
// aligned table output, and CSV persistence.

#ifndef DENSEST_BENCH_BENCH_COMMON_H_
#define DENSEST_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "io/csv_writer.h"

namespace densest::bench {

/// Prints the standard banner tying a binary to its paper artifact.
inline void Banner(const std::string& artifact, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s  (Bahmani, Kumar, Vassilvitskii, VLDB 2012)\n",
              artifact.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("==============================================================\n");
}

/// Ensures ./bench_results exists and returns the CSV path for `name`.
/// Fails with IOError when the directory cannot be created (the old POSIX
/// mkdir call ignored errors, so the CSV writer failed silently later).
inline StatusOr<std::string> CsvPath(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) {
    return Status::IOError("cannot create bench_results/: " + ec.message());
  }
  return "bench_results/" + name + ".csv";
}

/// Opens the CSV for a harness binary; on failure returns the error status,
/// and the caller just skips CSV output.
inline StatusOr<CsvWriter> OpenCsv(const std::string& name,
                                   const std::vector<std::string>& header) {
  StatusOr<std::string> path = CsvPath(name);
  if (!path.ok()) return path.status();
  return CsvWriter::Open(*path, header);
}

/// \brief Machine-readable metrics sink for the perf harnesses: collects
/// flat key -> number metrics (edges/s, scan counts, wall seconds) and
/// writes them as `bench_results/BENCH_<name>.json`, so CI and scripts can
/// diff runs without scraping the human-oriented stdout tables.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Writes the collected metrics; returns the error (and leaves no file
  /// behind) when bench_results/ is unavailable.
  Status Write() const {
    StatusOr<std::string> dir = CsvPath(name_);  // ensures bench_results/
    if (!dir.ok()) return dir.status();
    const std::string path = "bench_results/BENCH_" + name_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return Status::IOError("cannot open " + path);
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": {", name_.c_str());
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %.17g", i == 0 ? "" : ",",
                   metrics_[i].first.c_str(), metrics_[i].second);
    }
    std::fprintf(f, "\n  }\n}\n");
    if (std::fclose(f) != 0) return Status::IOError("close failed: " + path);
    return Status::OK();
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace densest::bench

#endif  // DENSEST_BENCH_BENCH_COMMON_H_
