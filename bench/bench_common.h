// Copyright 2026 The densest Authors.
// Shared helpers for the reproduction harness binaries: banner printing,
// aligned table output, and CSV persistence.

#ifndef DENSEST_BENCH_BENCH_COMMON_H_
#define DENSEST_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "io/csv_writer.h"

namespace densest::bench {

/// Prints the standard banner tying a binary to its paper artifact.
inline void Banner(const std::string& artifact, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s  (Bahmani, Kumar, Vassilvitskii, VLDB 2012)\n",
              artifact.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("==============================================================\n");
}

/// Ensures ./bench_results exists and returns the CSV path for `name`.
inline std::string CsvPath(const std::string& name) {
  ::mkdir("bench_results", 0755);
  return "bench_results/" + name + ".csv";
}

/// Opens the CSV for a harness binary; on failure returns a writer that is
/// not usable, and the caller just skips CSV output.
inline StatusOr<CsvWriter> OpenCsv(const std::string& name,
                                   const std::vector<std::string>& header) {
  return CsvWriter::Open(CsvPath(name), header);
}

}  // namespace densest::bench

#endif  // DENSEST_BENCH_BENCH_COMMON_H_
