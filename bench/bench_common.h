// Copyright 2026 The densest Authors.
// Shared helpers for the reproduction harness binaries: banner printing,
// aligned table output, and CSV persistence.

#ifndef DENSEST_BENCH_BENCH_COMMON_H_
#define DENSEST_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "io/bench_json.h"
#include "io/csv_writer.h"

namespace densest::bench {

/// Prints the standard banner tying a binary to its paper artifact.
inline void Banner(const std::string& artifact, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s  (Bahmani, Kumar, Vassilvitskii, VLDB 2012)\n",
              artifact.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("==============================================================\n");
}

/// Ensures ./bench_results exists and returns the CSV path for `name`.
/// Fails with IOError when the directory cannot be created (the old POSIX
/// mkdir call ignored errors, so the CSV writer failed silently later).
inline StatusOr<std::string> CsvPath(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) {
    return Status::IOError("cannot create bench_results/: " + ec.message());
  }
  return "bench_results/" + name + ".csv";
}

/// Opens the CSV for a harness binary; on failure returns the error status,
/// and the caller just skips CSV output.
inline StatusOr<CsvWriter> OpenCsv(const std::string& name,
                                   const std::vector<std::string>& header) {
  StatusOr<std::string> path = CsvPath(name);
  if (!path.ok()) return path.status();
  return CsvWriter::Open(*path, header);
}

/// Machine-readable metrics sink, now implemented in the library
/// (io/bench_json.h) so its serialization — key escaping, NaN/inf -> null —
/// is unit-tested instead of silently emitting invalid JSON here.
using BenchJson = ::densest::BenchJson;

}  // namespace densest::bench

#endif  // DENSEST_BENCH_BENCH_COMMON_H_
