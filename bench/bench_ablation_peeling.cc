// Ablation: batch peeling (Algorithm 1) vs Charikar's node-at-a-time
// greedy vs the max-core baseline vs the exact flow solver, on one
// social-graph stand-in: quality, passes, and local wall-clock.

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/algorithm1.h"
#include "core/charikar.h"
#include "core/kcore.h"
#include "flow/goldberg.h"
#include "gen/datasets.h"
#include "graph/undirected_graph.h"

int main() {
  using namespace densest;
  bench::Banner("Ablation: peeling strategies",
                "Batch peeling vs greedy vs core vs exact on flickr-sim");
  auto csv = bench::OpenCsv("ablation_peeling",
                            {"method", "rho", "passes", "seconds"});

  UndirectedGraph g = UndirectedGraph::FromEdgeList(MakeFlickrSim(1));
  std::printf("graph: |V|=%u |E|=%llu\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("%-24s %10s %12s %10s\n", "method", "rho", "passes",
              "seconds");

  auto report = [&](const char* name, double rho, uint64_t passes,
                    double seconds) {
    std::printf("%-24s %10.3f %12llu %10.3f\n", name, rho,
                static_cast<unsigned long long>(passes), seconds);
    if (csv.ok()) {
      csv->AddRow({name, CsvWriter::Num(rho), std::to_string(passes),
                   CsvWriter::Num(seconds)});
    }
  };

  for (double eps : {0.0, 0.5, 1.0, 2.0}) {
    Algorithm1Options opt;
    opt.epsilon = eps;
    opt.record_trace = false;
    WallTimer t;
    auto r = RunAlgorithm1(g, opt);
    if (!r.ok()) return 1;
    char name[64];
    std::snprintf(name, sizeof(name), "algorithm1(eps=%.1f)", eps);
    report(name, r->density, r->passes, t.ElapsedSeconds());
  }
  {
    WallTimer t;
    CharikarResult r = CharikarPeel(g);
    report("charikar greedy", r.best.density, r.best.passes,
           t.ElapsedSeconds());
  }
  {
    WallTimer t;
    UndirectedDensestResult r = MaxCoreBaseline(g);
    report("max-core baseline", r.density, r.passes, t.ElapsedSeconds());
  }
  {
    WallTimer t;
    auto r = ExactDensestSubgraph(g);
    if (!r.ok()) return 1;
    report("exact (flow)", r->density,
           static_cast<uint64_t>(r->flow_iterations), t.ElapsedSeconds());
  }
  std::printf("\nExpected shape: Algorithm 1 matches greedy's quality in "
              "orders of magnitude fewer passes; exact costs far more time "
              "for a small density gain.\n");
  return 0;
}
