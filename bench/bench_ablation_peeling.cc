// Ablation: batch peeling (Algorithm 1) vs Charikar's node-at-a-time
// greedy vs the max-core baseline vs the exact flow solver, on one
// social-graph stand-in: quality, passes, and local wall-clock.

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/algorithm1.h"
#include "core/charikar.h"
#include "core/kcore.h"
#include "core/multi_run.h"
#include "flow/goldberg.h"
#include "gen/datasets.h"
#include "graph/undirected_graph.h"
#include "stream/memory_stream.h"

int main() {
  using namespace densest;
  bench::Banner("Ablation: peeling strategies",
                "Batch peeling vs greedy vs core vs exact on flickr-sim");
  auto csv = bench::OpenCsv("ablation_peeling",
                            {"method", "rho", "passes", "seconds"});

  UndirectedGraph g = UndirectedGraph::FromEdgeList(MakeFlickrSim(1));
  std::printf("graph: |V|=%u |E|=%llu\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("%-24s %10s %12s %10s\n", "method", "rho", "passes",
              "seconds");

  auto report = [&](const char* name, double rho, uint64_t passes,
                    double seconds) {
    std::printf("%-24s %10.3f %12llu %10.3f\n", name, rho,
                static_cast<unsigned long long>(passes), seconds);
    if (csv.ok()) {
      csv->AddRow({name, CsvWriter::Num(rho), std::to_string(passes),
                   CsvWriter::Num(seconds)});
    }
  };

  // The whole epsilon grid runs fused through MultiRunEngine: one physical
  // scan per pass round feeds all four runs, so the reported seconds are
  // for the entire sweep (per-eps wall time is no longer separable).
  {
    const std::vector<double> epsilons = {0.0, 0.5, 1.0, 2.0};
    Algorithm1Options base;
    base.record_trace = false;
    UndirectedGraphStream stream(g);
    MultiRunEngine engine;
    WallTimer t;
    auto sweep = RunAlgorithm1EpsilonSweep(stream, base, epsilons, &engine);
    if (!sweep.ok()) return 1;
    const double sweep_s = t.ElapsedSeconds();
    for (size_t i = 0; i < epsilons.size(); ++i) {
      char name[64];
      std::snprintf(name, sizeof(name), "algorithm1(eps=%.1f)", epsilons[i]);
      // Every row carries the whole fused sweep's wall time: the four runs
      // share their scans, so that total IS what any one of them costs.
      report(name, (*sweep)[i].density, (*sweep)[i].passes, sweep_s);
    }
    std::printf("  (seconds above are per fused 4-eps sweep: %.3fs total, "
                "%llu physical scans vs %llu run-by-run)\n",
                sweep_s,
                static_cast<unsigned long long>(engine.last_physical_passes()),
                static_cast<unsigned long long>(engine.last_logical_passes()));
  }
  {
    WallTimer t;
    CharikarResult r = CharikarPeel(g);
    report("charikar greedy", r.best.density, r.best.passes,
           t.ElapsedSeconds());
  }
  {
    WallTimer t;
    UndirectedDensestResult r = MaxCoreBaseline(g);
    report("max-core baseline", r.density, r.passes, t.ElapsedSeconds());
  }
  {
    WallTimer t;
    auto r = ExactDensestSubgraph(g);
    if (!r.ok()) return 1;
    report("exact (flow)", r->density,
           static_cast<uint64_t>(r->flow_iterations), t.ElapsedSeconds());
  }
  std::printf("\nExpected shape: Algorithm 1 matches greedy's quality in "
              "orders of magnitude fewer passes; exact costs far more time "
              "for a small density gain.\n");
  return 0;
}
