// Reproduces Figure 6.3: remaining nodes and edges after each pass, for
// eps in {0, 1, 2}, on the flickr and im stand-ins (log-scale series).

#include <cstdio>

#include "bench_common.h"
#include "core/algorithm1.h"
#include "gen/datasets.h"
#include "graph/undirected_graph.h"

namespace {

using namespace densest;

void Trace(const char* name, const UndirectedGraph& g, CsvWriter* csv) {
  std::printf("\n%s\n", name);
  for (double eps : {0.0, 1.0, 2.0}) {
    Algorithm1Options opt;
    opt.epsilon = eps;
    auto r = RunAlgorithm1(g, opt);
    if (!r.ok()) continue;
    std::printf("  eps=%.0f  %-6s %12s %14s\n", eps, "pass",
                "rem. nodes", "rem. edges");
    for (const PassSnapshot& s : r->trace) {
      std::printf("          %-6llu %12u %14llu\n",
                  static_cast<unsigned long long>(s.pass), s.nodes,
                  static_cast<unsigned long long>(s.edges));
      if (csv != nullptr) {
        csv->AddRow({name, CsvWriter::Num(eps), std::to_string(s.pass),
                     std::to_string(s.nodes), std::to_string(s.edges)});
      }
    }
  }
}

}  // namespace

int main() {
  using namespace densest;
  bench::Banner("Figure 6.3",
                "Number of nodes and edges in the graph after each pass");
  auto csv = bench::OpenCsv("fig63_remaining_graph",
                            {"dataset", "eps", "pass", "nodes", "edges"});
  CsvWriter* csv_ptr = csv.ok() ? &csv.value() : nullptr;
  {
    UndirectedGraph flickr = UndirectedGraph::FromEdgeList(MakeFlickrSim(1));
    Trace("FLICKR-sim", flickr, csv_ptr);
  }
  {
    UndirectedGraph im = UndirectedGraph::FromEdgeList(MakeImSim(2));
    Trace("IM-sim", im, csv_ptr);
  }
  std::printf("\nPaper's observation to reproduce: the graph shrinks by "
              "orders of magnitude in the first passes, so later passes "
              "could run in main memory.\n");
  return 0;
}
