// Ablation (§4.1.1): the paper's pass lower-bound constructions.
// (a) Lemma 5: disjoint regular blocks force Omega(log n / log log n)
//     passes — passes grow with k.
// (b) Lemma 6: the deterministic weighted preferential-attachment graph
//     forces Omega(log n) passes at small eps.

#include <cstdio>

#include "bench_common.h"
#include "core/algorithm1.h"
#include "gen/lower_bound.h"
#include "gen/preferential_attachment.h"
#include "graph/undirected_graph.h"

int main() {
  using namespace densest;
  bench::Banner("Ablation: pass lower bounds (Lemmas 5 and 6)",
                "Constructions on which batch peeling needs many passes");
  auto csv = bench::OpenCsv("ablation_lowerbounds",
                            {"construction", "param", "nodes", "eps",
                             "passes", "rho"});

  std::printf("Lemma 5 construction (eps=0.001):\n");
  std::printf("%4s %10s %10s %8s %10s\n", "k", "|V|", "|E|", "passes",
              "rho");
  for (int k = 3; k <= 7; ++k) {
    EdgeList e = Lemma5Construction(k);
    UndirectedGraph g = UndirectedGraph::FromEdgeList(e);
    Algorithm1Options opt;
    opt.epsilon = 0.001;
    opt.record_trace = false;
    auto r = RunAlgorithm1(g, opt);
    if (!r.ok()) return 1;
    std::printf("%4d %10u %10llu %8llu %10.2f\n", k, g.num_nodes(),
                static_cast<unsigned long long>(g.num_edges()),
                static_cast<unsigned long long>(r->passes), r->density);
    if (csv.ok()) {
      csv->AddRow({"lemma5", std::to_string(k),
                   std::to_string(g.num_nodes()), "0.001",
                   std::to_string(r->passes), CsvWriter::Num(r->density)});
    }
  }

  std::printf("\nLemma 6 weighted preferential attachment (eps=0.001):\n");
  std::printf("%6s %10s %8s %10s\n", "n", "|E|", "passes", "rho");
  for (NodeId n : {200u, 400u, 800u, 1600u}) {
    EdgeList e = DeterministicWeightedPA(n);
    UndirectedGraph g = UndirectedGraph::FromEdgeList(e);
    Algorithm1Options opt;
    opt.epsilon = 0.001;
    opt.record_trace = false;
    auto r = RunAlgorithm1(g, opt);
    if (!r.ok()) return 1;
    std::printf("%6u %10llu %8llu %10.4f\n", n,
                static_cast<unsigned long long>(g.num_edges()),
                static_cast<unsigned long long>(r->passes), r->density);
    if (csv.ok()) {
      csv->AddRow({"lemma6_pa", std::to_string(n),
                   std::to_string(g.num_nodes()), "0.001",
                   std::to_string(r->passes), CsvWriter::Num(r->density)});
    }
  }
  std::printf("\nExpected shape: Lemma 5 passes grow with k; Lemma 6 passes "
              "grow roughly like log n (vs the ~5 passes social graphs "
              "need) — the analysis of Lemma 4 is tight.\n");
  return 0;
}
