// Reproduces Table 2: empirical approximation ratios rho*(G) / rho~(G) of
// Algorithm 1 for eps in {0.001, 0.1, 1} on seven SNAP-scale graphs.
// The paper computed rho* with an LP (CLP); we use the exact max-flow
// solver (same optimum — see DESIGN.md section 3). The three-eps grid per
// graph runs fused through MultiRunEngine (one physical scan per pass
// round feeds all epsilons) instead of once per epsilon.

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/algorithm1.h"
#include "core/multi_run.h"
#include "flow/goldberg.h"
#include "gen/datasets.h"
#include "graph/undirected_graph.h"
#include "stream/memory_stream.h"

int main() {
  using namespace densest;
  bench::Banner("Table 2",
                "Empirical approximation bounds rho*/rho~ for various eps "
                "(fused epsilon grid)");

  const std::vector<double> kEpsilons = {0.001, 0.1, 1.0};
  auto csv = bench::OpenCsv(
      "table2_quality",
      {"graph", "nodes", "edges", "paper_rho_star", "rho_star",
       "ratio_eps0.001", "ratio_eps0.1", "ratio_eps1"});

  std::printf("%-14s %8s %9s | %9s %9s | %-8s %-8s %-8s\n", "G", "|V|",
              "|E|", "paper rho*", "our rho*", "e=0.001", "e=0.1", "e=1");

  MultiRunEngine engine;  // reused across the per-graph sweeps
  uint64_t fused_scans = 0;
  uint64_t logical_scans = 0;
  for (const SnapStandInSpec& spec : Table2Specs()) {
    EdgeList edges = MakeSnapStandIn(spec, 0xdb5eed);
    UndirectedGraph g = UndirectedGraph::FromEdgeList(edges);

    WallTimer timer;
    auto exact = ExactDensestSubgraph(g);
    if (!exact.ok()) {
      std::printf("%-14s exact solver failed: %s\n", spec.name.c_str(),
                  exact.status().ToString().c_str());
      return 1;
    }

    UndirectedGraphStream stream(g);
    Algorithm1Options base;
    base.record_trace = false;
    auto sweep = RunAlgorithm1EpsilonSweep(stream, base, kEpsilons, &engine);
    if (!sweep.ok()) {
      std::printf("%-14s sweep failed: %s\n", spec.name.c_str(),
                  sweep.status().ToString().c_str());
      return 1;
    }
    fused_scans += engine.last_physical_passes();
    logical_scans += engine.last_logical_passes();

    double ratios[3] = {0, 0, 0};
    for (size_t i = 0; i < kEpsilons.size(); ++i) {
      if ((*sweep)[i].density > 0) {
        ratios[i] = exact->density / (*sweep)[i].density;
      }
    }

    std::printf("%-14s %8u %9llu | %9.2f %9.2f | %-8.3f %-8.3f %-8.3f  (%.1fs, %d flows)\n",
                spec.name.c_str(), g.num_nodes(),
                static_cast<unsigned long long>(g.num_edges()),
                spec.paper_rho, exact->density, ratios[0], ratios[1],
                ratios[2], timer.ElapsedSeconds(), exact->flow_iterations);
    if (csv.ok()) {
      csv->AddRow({spec.name, std::to_string(g.num_nodes()),
                   std::to_string(g.num_edges()),
                   CsvWriter::Num(spec.paper_rho),
                   CsvWriter::Num(exact->density), CsvWriter::Num(ratios[0]),
                   CsvWriter::Num(ratios[1]), CsvWriter::Num(ratios[2])});
    }
  }
  std::printf("\nfused epsilon grids: %llu physical scans total (run-by-run "
              "would cost %llu)\n",
              static_cast<unsigned long long>(fused_scans),
              static_cast<unsigned long long>(logical_scans));
  std::printf("Paper's observation to reproduce: ratios stay near 1 "
              "(1.0-1.43), far below the 2(1+eps) worst case.\n");
  return 0;
}
