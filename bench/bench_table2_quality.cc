// Reproduces Table 2: empirical approximation ratios rho*(G) / rho~(G) of
// Algorithm 1 for eps in {0.001, 0.1, 1} on seven SNAP-scale graphs.
// The paper computed rho* with an LP (CLP); we use the exact max-flow
// solver (same optimum — see DESIGN.md section 3).

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/algorithm1.h"
#include "flow/goldberg.h"
#include "gen/datasets.h"
#include "graph/undirected_graph.h"

int main() {
  using namespace densest;
  bench::Banner("Table 2",
                "Empirical approximation bounds rho*/rho~ for various eps");

  const double kEpsilons[] = {0.001, 0.1, 1.0};
  auto csv = bench::OpenCsv(
      "table2_quality",
      {"graph", "nodes", "edges", "paper_rho_star", "rho_star",
       "ratio_eps0.001", "ratio_eps0.1", "ratio_eps1"});

  std::printf("%-14s %8s %9s | %9s %9s | %-8s %-8s %-8s\n", "G", "|V|",
              "|E|", "paper rho*", "our rho*", "e=0.001", "e=0.1", "e=1");

  for (const SnapStandInSpec& spec : Table2Specs()) {
    EdgeList edges = MakeSnapStandIn(spec, 0xdb5eed);
    UndirectedGraph g = UndirectedGraph::FromEdgeList(edges);

    WallTimer timer;
    auto exact = ExactDensestSubgraph(g);
    if (!exact.ok()) {
      std::printf("%-14s exact solver failed: %s\n", spec.name.c_str(),
                  exact.status().ToString().c_str());
      return 1;
    }

    double ratios[3] = {0, 0, 0};
    for (int i = 0; i < 3; ++i) {
      Algorithm1Options opt;
      opt.epsilon = kEpsilons[i];
      opt.record_trace = false;
      auto r = RunAlgorithm1(g, opt);
      if (!r.ok() || r->density <= 0) continue;
      ratios[i] = exact->density / r->density;
    }

    std::printf("%-14s %8u %9llu | %9.2f %9.2f | %-8.3f %-8.3f %-8.3f  (%.1fs, %d flows)\n",
                spec.name.c_str(), g.num_nodes(),
                static_cast<unsigned long long>(g.num_edges()),
                spec.paper_rho, exact->density, ratios[0], ratios[1],
                ratios[2], timer.ElapsedSeconds(), exact->flow_iterations);
    if (csv.ok()) {
      csv->AddRow({spec.name, std::to_string(g.num_nodes()),
                   std::to_string(g.num_edges()),
                   CsvWriter::Num(spec.paper_rho),
                   CsvWriter::Num(exact->density), CsvWriter::Num(ratios[0]),
                   CsvWriter::Num(ratios[1]), CsvWriter::Num(ratios[2])});
    }
  }
  std::printf("\nPaper's observation to reproduce: ratios stay near 1 "
              "(1.0-1.43), far below the 2(1+eps) worst case.\n");
  return 0;
}
