// Reproduces Table 1: parameters of the graphs used in the experiments.
// Prints the paper's reported sizes next to the generated stand-ins.

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "gen/datasets.h"
#include "graph/directed_graph.h"
#include "graph/stats.h"
#include "graph/undirected_graph.h"

namespace {

using namespace densest;

void Report(const DatasetInfo& info, const EdgeList& edges,
            CsvWriter* csv) {
  GraphStats stats;
  if (info.directed) {
    stats = ComputeStats(DirectedGraph::FromEdgeList(edges));
  } else {
    stats = ComputeStats(UndirectedGraph::FromEdgeList(edges));
  }
  std::printf("%-16s %-10s paper: |V|=%-11llu |E|=%-12llu  sim: |V|=%-8u |E|=%-9llu maxdeg=%u\n",
              info.name.c_str(), info.directed ? "directed" : "undirected",
              static_cast<unsigned long long>(info.paper_nodes),
              static_cast<unsigned long long>(info.paper_edges),
              stats.num_nodes,
              static_cast<unsigned long long>(stats.num_edges),
              stats.max_degree);
  if (csv != nullptr) {
    csv->AddRow({info.name, info.directed ? "directed" : "undirected",
                 std::to_string(info.paper_nodes),
                 std::to_string(info.paper_edges),
                 std::to_string(stats.num_nodes),
                 std::to_string(stats.num_edges),
                 std::to_string(stats.max_degree)});
  }
}

}  // namespace

int main() {
  using namespace densest;
  bench::Banner("Table 1", "Parameters of the graphs used in the experiments "
                           "(synthetic stand-ins; see DESIGN.md section 3)");

  auto csv = bench::OpenCsv(
      "table1_datasets",
      {"dataset", "type", "paper_nodes", "paper_edges", "sim_nodes",
       "sim_edges", "sim_max_degree"});
  CsvWriter* csv_ptr = csv.ok() ? &csv.value() : nullptr;

  auto infos = Table1Datasets();
  WallTimer timer;
  Report(infos[0], MakeFlickrSim(1), csv_ptr);
  Report(infos[1], MakeImSim(2), csv_ptr);
  Report(infos[2], MakeLiveJournalSim(3), csv_ptr);
  Report(infos[3], MakeTwitterSim(4), csv_ptr);
  std::printf("[generated all four stand-ins in %.1fs]\n",
              timer.ElapsedSeconds());
  return 0;
}
