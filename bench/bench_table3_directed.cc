// Reproduces Table 3: directed density rho on the livejournal stand-in
// for delta in {2, 10, 100} and eps in {0, 1, 2} (c searched in powers
// of delta; coarser delta = fewer c values = worse density).

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/algorithm3.h"
#include "gen/datasets.h"
#include "graph/directed_graph.h"

int main() {
  using namespace densest;
  bench::Banner("Table 3",
                "livejournal-sim: rho for different delta and eps");
  auto csv =
      bench::OpenCsv("table3_directed", {"eps", "delta", "rho", "runs"});

  DirectedGraph g = DirectedGraph::FromEdgeList(MakeLiveJournalSim(3));
  std::printf("graph: |V|=%u |E|=%llu\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  const double deltas[] = {2, 10, 100};
  std::printf("%6s | %10s %10s %10s\n", "eps", "delta=2", "delta=10",
              "delta=100");
  for (double eps : {0.0, 1.0, 2.0}) {
    std::printf("%6.0f |", eps);
    for (double delta : deltas) {
      CSearchOptions opt;
      opt.delta = delta;
      opt.epsilon = eps;
      opt.record_trace = false;
      WallTimer timer;
      auto r = RunCSearch(g, opt);
      if (!r.ok()) {
        std::printf(" %10s", "ERR");
        continue;
      }
      std::printf(" %10.2f", r->best.density);
      if (csv.ok()) {
        csv->AddRow({CsvWriter::Num(eps), CsvWriter::Num(delta),
                     CsvWriter::Num(r->best.density),
                     std::to_string(r->sweep.size())});
      }
    }
    std::printf("\n");
  }
  std::printf("\nPaper's observation to reproduce: density degrades "
              "gracefully as delta coarsens; eps<=1 hurts little, eps=2 "
              "more (paper: 325->180 across the sweep).\n");
  return 0;
}
