// Reproduces Table 4 — ratio of the density found with Count-Sketch
// degree counting vs exact counting, for three counter-memory budgets
// (t*b/n ~ 0.16/0.20/0.25, the paper's flickr row) and eps in {0..2.5} —
// and self-checks the fused sweep that produces it:
//
//   1. every (eps, budget) configuration plus the per-eps exact baseline
//      runs TWICE, run-by-run (each config re-scans the stream for itself)
//      and fused through RunSketchedSweep (the whole grid shares one
//      physical scan per pass round);
//   2. the two must be bit-identical per configuration, the fused scan
//      count must equal max-over-runs(passes), and the fused sweep must
//      scan the stream at least 3x less than run-by-run.
// Exits nonzero on any violation, so CI fails if the sketched fusion ever
// regresses to per-run scanning or diverges. Metrics land in
// bench_results/BENCH_table4_sketch.json.
//
// Usage: bench_table4_sketch [smoke]
//   (no args)  flickr-sim, the paper-config stand-in
//   smoke      a small Erdős–Rényi graph for CI

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/algorithm1.h"
#include "gen/datasets.h"
#include "gen/erdos_renyi.h"
#include "graph/undirected_graph.h"
#include "sketch/degree_oracle.h"
#include "sketch/sketch_runs.h"
#include "sketch/sketched_algorithm1.h"
#include "stream/memory_stream.h"
#include "stream/pass_stats.h"

namespace {

using namespace densest;

constexpr double kEpsilons[] = {0, 0.5, 1.0, 1.5, 2.0, 2.5};
// The paper's Table 4 memory row: counter words as a fraction of the n
// words exact counting needs. Buckets are derived as ratio * n / t so the
// row reproduces on any graph size (the paper's absolute 30000-50000
// bucket labels target its n=976K flickr crawl).
constexpr double kMemoryRatios[] = {0.16, 0.20, 0.25};
constexpr int kTables = 5;

/// The Table 4 grid: per eps, the exact-counting baseline followed by one
/// sketch per memory budget. Seeds vary per budget, as the original
/// harness did.
std::vector<SketchedSweepRun> BuildGrid(NodeId n) {
  std::vector<SketchedSweepRun> grid;
  for (double eps : kEpsilons) {
    SketchedSweepRun exact;
    exact.options.epsilon = eps;
    exact.options.record_trace = false;
    exact.exact = true;
    grid.push_back(exact);
    for (int i = 0; i < 3; ++i) {
      SketchedSweepRun run;
      run.options.epsilon = eps;
      run.options.record_trace = false;
      run.sketch.tables = kTables;
      run.sketch.buckets = std::max(
          1, static_cast<int>(kMemoryRatios[i] * static_cast<double>(n) /
                              kTables));
      run.sketch_seed = 0x5eed + i;
      grid.push_back(run);
    }
  }
  return grid;
}

bool SameRun(const SketchedResult& a, const SketchedResult& b) {
  return a.result.density == b.result.density &&
         a.result.passes == b.result.passes &&
         a.result.nodes == b.result.nodes &&
         a.oracle_state_words == b.oracle_state_words;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;

  bench::Banner("Table 4",
                "rho with / without Count-Sketch counting (t=5), fused "
                "sweep vs run-by-run (self-checking)");
  auto csv = bench::OpenCsv("table4_sketch",
                            {"eps", "buckets", "rho_sketch", "rho_exact",
                             "ratio", "memory_ratio"});
  bench::BenchJson json("table4_sketch");

  UndirectedGraph g =
      smoke ? UndirectedGraph::FromEdgeList(ErdosRenyiGnm(5000, 100000, 7))
            : UndirectedGraph::FromEdgeList(MakeFlickrSim(1));
  const NodeId n = g.num_nodes();
  std::printf("graph: |V|=%u |E|=%llu%s\n\n", n,
              static_cast<unsigned long long>(g.num_edges()),
              smoke ? "  [smoke]" : "");

  const std::vector<SketchedSweepRun> grid = BuildGrid(n);

  // Run-by-run leg: every configuration scans the stream for itself.
  UndirectedGraphStream seq_inner(g);
  PassStats seq_stats;
  CountingEdgeStream seq_stream(seq_inner, seq_stats);
  std::vector<SketchedResult> seq;
  seq.reserve(grid.size());
  WallTimer seq_timer;
  for (const SketchedSweepRun& run : grid) {
    StatusOr<SketchedResult> r =
        run.exact
            ? [&]() -> StatusOr<SketchedResult> {
                ExactDegreeOracle oracle(n);
                return RunAlgorithm1WithOracle(seq_stream, oracle,
                                               run.options);
              }()
            : RunSketchedAlgorithm1(seq_stream, run.sketch, run.sketch_seed,
                                    run.options);
    if (!r.ok()) {
      std::fprintf(stderr, "sequential run failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    seq.push_back(std::move(*r));
  }
  const double seq_wall_s = seq_timer.ElapsedSeconds();

  // Fused leg: the whole grid drinks from shared scans.
  UndirectedGraphStream fused_inner(g);
  PassStats fused_stats;
  CountingEdgeStream fused_stream(fused_inner, fused_stats);
  MultiRunEngine engine;
  WallTimer fused_timer;
  auto fused = RunSketchedSweep(fused_stream, grid, &engine);
  const double fused_wall_s = fused_timer.ElapsedSeconds();
  if (!fused.ok()) {
    std::fprintf(stderr, "fused sweep failed: %s\n",
                 fused.status().ToString().c_str());
    return 1;
  }

  // Self-check 1: bit-identical results per configuration.
  bool identical = fused->size() == seq.size();
  uint64_t max_passes = 0;
  for (size_t i = 0; identical && i < seq.size(); ++i) {
    identical = SameRun(seq[i], (*fused)[i]);
    max_passes = std::max(max_passes, (*fused)[i].result.passes);
  }
  // Self-check 2: scan accounting — fused physical scans must equal the
  // longest run, and the wrapper stream must agree with the engine.
  const bool scans_ok = engine.last_physical_passes() == max_passes &&
                        engine.last_physical_passes() == fused_stats.passes &&
                        engine.last_logical_passes() == seq_stats.passes;
  // Self-check 3: the fused sweep actually shares scans.
  const double reduction =
      fused_stats.passes == 0
          ? 0.0
          : static_cast<double>(seq_stats.passes) /
                static_cast<double>(fused_stats.passes);
  constexpr double kFloor = 3.0;

  // The Table 4 grid, fused results (identical to sequential by check 1).
  std::printf("%6s |", "eps");
  for (double ratio : kMemoryRatios) std::printf("   mem=%.2f*n", ratio);
  std::printf("\n");
  const size_t stride = 4;  // exact + 3 budgets per eps
  double memory_ratio[3] = {0, 0, 0};
  for (size_t e = 0; e < std::size(kEpsilons); ++e) {
    const SketchedResult& exact = (*fused)[e * stride];
    std::printf("%6.1f |", kEpsilons[e]);
    for (size_t i = 0; i < 3; ++i) {
      const SketchedResult& sk = (*fused)[e * stride + 1 + i];
      const double ratio = exact.result.density > 0
                               ? sk.result.density / exact.result.density
                               : 0.0;
      memory_ratio[i] = sk.memory_ratio;
      std::printf(" %12.3f", ratio);
      if (csv.ok()) {
        csv->AddRow({CsvWriter::Num(kEpsilons[e]),
                     std::to_string(grid[e * stride + 1 + i].sketch.buckets),
                     CsvWriter::Num(sk.result.density),
                     CsvWriter::Num(exact.result.density),
                     CsvWriter::Num(ratio), CsvWriter::Num(sk.memory_ratio)});
      }
    }
    std::printf("\n");
  }
  std::printf("%6s |", "Memory");
  for (double m : memory_ratio) std::printf(" %12.2f", m);
  std::printf("\n\n");

  std::printf("fused sweep: %llu -> %llu physical scans (%.2fx, floor "
              "%.0fx)   %.2fs -> %.2fs   results %s\n",
              static_cast<unsigned long long>(seq_stats.passes),
              static_cast<unsigned long long>(fused_stats.passes), reduction,
              kFloor, seq_wall_s, fused_wall_s,
              identical && scans_ok ? "identical" : "DIVERGED");

  json.Add("sequential_scans", static_cast<double>(seq_stats.passes));
  json.Add("fused_scans", static_cast<double>(fused_stats.passes));
  json.Add("physical_scans", static_cast<double>(engine.last_physical_passes()));
  json.Add("scan_reduction", reduction);
  json.Add("sequential_wall_s", seq_wall_s);
  json.Add("fused_wall_s", fused_wall_s);
  json.Add("identical", identical && scans_ok ? 1.0 : 0.0);
  if (fused_wall_s > 0) {
    json.Add("fused_edges_per_s",
             static_cast<double>(engine.last_edges_scanned()) / fused_wall_s);
  }
  if (Status js = json.Write(); !js.ok()) {
    std::fprintf(stderr, "warning: no JSON output: %s\n",
                 js.ToString().c_str());
  }

  const bool ok = identical && scans_ok && reduction >= kFloor;
  std::printf("\nPaper's observation to reproduce: near-1 ratios for small "
              "eps even at 16-25%% of exact-counter memory; quality decays "
              "as eps grows.\n");
  std::printf("%s\n", ok ? "PASS: fused sketched sweep is identical and "
                           "within the scan-reduction floor"
                         : "FAIL: fused sketched sweep diverged or scan "
                           "reduction below floor");
  return ok ? 0 : 1;
}
