// Reproduces Table 4: ratio of the density found with Count-Sketch
// degree counting vs exact counting on the flickr stand-in, for
// b in {30000, 40000, 50000} buckets, t=5 tables, eps in {0..2.5};
// bottom row reports the counter-memory ratio (t*b / n).

#include <cstdio>

#include "bench_common.h"
#include "core/algorithm1.h"
#include "gen/datasets.h"
#include "graph/undirected_graph.h"
#include "sketch/sketched_algorithm1.h"
#include "stream/memory_stream.h"

int main() {
  using namespace densest;
  bench::Banner("Table 4",
                "flickr-sim: rho with / without sketching (t=5)");
  auto csv = bench::OpenCsv("table4_sketch",
                            {"eps", "buckets", "rho_sketch", "rho_exact",
                             "ratio", "memory_ratio"});

  UndirectedGraph g = UndirectedGraph::FromEdgeList(MakeFlickrSim(1));
  std::printf("graph: |V|=%u |E|=%llu\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // Paper buckets target n=976K; our stand-in has n~100K, so scale the
  // bucket grid by the same ~9.76x to keep t*b/n comparable (the printed
  // memory row is what matters). We keep the paper's absolute labels.
  const int kPaperBuckets[] = {30000, 40000, 50000};
  const int kScaledBuckets[] = {3072, 4096, 5120};
  const double kEpsilons[] = {0, 0.5, 1.0, 1.5, 2.0, 2.5};

  std::printf("%6s | %12s %12s %12s\n", "eps", "b=30000*", "b=40000*",
              "b=50000*");
  double memory_ratio[3] = {0, 0, 0};
  for (double eps : kEpsilons) {
    Algorithm1Options opt;
    opt.epsilon = eps;
    opt.record_trace = false;
    auto exact = RunAlgorithm1(g, opt);
    if (!exact.ok()) return 1;

    std::printf("%6.1f |", eps);
    for (int i = 0; i < 3; ++i) {
      UndirectedGraphStream stream(g);
      CountSketchOptions sk;
      sk.tables = 5;
      sk.buckets = kScaledBuckets[i];
      auto sketched = RunSketchedAlgorithm1(stream, sk, 0x5eed + i, opt);
      if (!sketched.ok()) return 1;
      double ratio = sketched->result.density / exact->density;
      memory_ratio[i] = sketched->memory_ratio;
      std::printf(" %12.3f", ratio);
      if (csv.ok()) {
        csv->AddRow({CsvWriter::Num(eps), std::to_string(kPaperBuckets[i]),
                     CsvWriter::Num(sketched->result.density),
                     CsvWriter::Num(exact->density), CsvWriter::Num(ratio),
                     CsvWriter::Num(sketched->memory_ratio)});
      }
    }
    std::printf("\n");
  }
  std::printf("%6s |", "Memory");
  for (double m : memory_ratio) std::printf(" %12.2f", m);
  std::printf("\n  (*bucket grid scaled with the graph so t*b/n matches the "
              "paper's 0.16/0.20/0.25 memory row)\n");
  std::printf("\nPaper's observation to reproduce: near-1 ratios for small "
              "eps even at 16-25%% of exact-counter memory; quality decays "
              "as eps grows.\n");
  return 0;
}
