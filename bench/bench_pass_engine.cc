// Pass-engine throughput harness: edges/sec of one full streaming pass,
// comparing the seed's scalar path (virtual Next per edge + byte-per-node
// bitmap) against the batched engine at 1/2/4/8 threads, on an in-memory
// edge-list stream and on a CSR graph stream.
//
// Usage: bench_pass_engine [num_edges] [num_nodes] [repetitions]
// Defaults reproduce the ISSUE acceptance setup: a 1M-edge in-memory
// stream. CI smoke-runs it with a tiny graph.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/pass_engine.h"
#include "gen/erdos_renyi.h"
#include "graph/subgraph.h"
#include "graph/undirected_graph.h"
#include "obs/metrics.h"
#include "stream/memory_stream.h"

namespace {

using namespace densest;

/// Replica of the seed implementation's NodeSet: one byte per node, branchy
/// double lookup. Kept here so the baseline stays honest after the library
/// switched to word-packed sets.
struct ByteNodeSet {
  std::vector<uint8_t> bits;
  explicit ByteNodeSet(NodeId n) : bits(n, 1) {}
  bool Contains(NodeId u) const { return bits[u] != 0; }
};

/// Replica of the seed RunUndirectedPass: one virtual Next() per edge.
UndirectedPassResult SeedScalarPass(EdgeStream& stream,
                                    const ByteNodeSet& alive,
                                    std::vector<double>& degrees) {
  std::fill(degrees.begin(), degrees.end(), 0.0);
  UndirectedPassResult out;
  stream.Reset();
  Edge e;
  while (stream.Next(&e)) {
    if (alive.Contains(e.u) && alive.Contains(e.v)) {
      degrees[e.u] += e.w;
      degrees[e.v] += e.w;
      out.weight += e.w;
      ++out.edges;
    }
  }
  return out;
}

struct Measurement {
  double edges_per_sec = 0;
  double weight = 0;  // checksum: all configurations must agree
};

template <typename PassFn>
Measurement Measure(EdgeId edges, int reps, const PassFn& pass) {
  pass();  // warm-up (allocates engine scratch outside the timed region)
  // Best-of-N: each repetition is timed individually and the fastest one
  // reported, which suppresses scheduler/steal-time noise on shared
  // machines and reflects what the code is actually capable of.
  double best_secs = 1e300;
  double weight = 0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    weight = pass();
    best_secs = std::min(best_secs, timer.ElapsedSeconds());
  }
  Measurement m;
  m.edges_per_sec =
      static_cast<double>(edges) / (best_secs > 0 ? best_secs : 1e-9);
  m.weight = weight;
  return m;
}

void Report(const char* stream_name, const char* config, Measurement m,
            double baseline_eps, StatusOr<CsvWriter>& csv,
            bench::BenchJson& json) {
  std::printf("%-12s %-18s %10.2f Medges/s   %5.2fx\n", stream_name, config,
              m.edges_per_sec / 1e6, m.edges_per_sec / baseline_eps);
  if (csv.ok()) {
    csv->AddRow({std::string(stream_name), std::string(config),
                 CsvWriter::Num(m.edges_per_sec),
                 CsvWriter::Num(m.edges_per_sec / baseline_eps),
                 CsvWriter::Num(m.weight)});
  }
  const std::string key = std::string(stream_name) + "." + config;
  json.Add(key + ".edges_per_sec", m.edges_per_sec);
  json.Add(key + ".speedup_vs_seed", m.edges_per_sec / baseline_eps);
}

}  // namespace

int main(int argc, char** argv) {
  const EdgeId num_edges = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                    : 1000000ULL;
  const NodeId num_nodes = argc > 2
                               ? static_cast<NodeId>(std::strtoull(
                                     argv[2], nullptr, 10))
                               : 65536u;
  const int reps = argc > 3 ? std::atoi(argv[3]) : 5;

  const EdgeId max_edges =
      static_cast<EdgeId>(num_nodes) * (num_nodes - 1) / 2;
  if (num_edges == 0 || num_edges > max_edges || reps < 1) {
    std::fprintf(stderr,
                 "usage: bench_pass_engine [num_edges] [num_nodes] [reps]\n"
                 "need 1 <= num_edges <= n(n-1)/2 (= %llu for n=%u), reps >= 1\n",
                 static_cast<unsigned long long>(max_edges), num_nodes);
    return 2;
  }

  bench::Banner("Pass engine",
                "Streaming-pass throughput: seed scalar vs batched vs "
                "batched+parallel");
  std::printf("graph: G(n=%u, m=%llu), %d repetitions per config\n\n",
              num_nodes, static_cast<unsigned long long>(num_edges), reps);

  EdgeList el = ErdosRenyiGnm(num_nodes, num_edges, 0xe41e);
  UndirectedGraph g = UndirectedGraph::FromEdgeList(el);

  // Alive sets with every 10th node dead: representative of early peeling
  // passes, where nearly the whole stream survives the filter.
  ByteNodeSet byte_alive(num_nodes);
  NodeSet word_alive(num_nodes, /*full=*/true);
  for (NodeId u = 0; u < num_nodes; u += 10) {
    byte_alive.bits[u] = 0;
    word_alive.Remove(u);
  }
  std::vector<double> degrees(num_nodes);

  auto csv = bench::OpenCsv("pass_engine",
                            {"stream", "config", "edges_per_sec", "speedup",
                             "weight_checksum"});
  if (!csv.ok()) {
    std::fprintf(stderr, "warning: no CSV output: %s\n",
                 csv.status().ToString().c_str());
  }
  bench::BenchJson json("pass_engine");
  json.Add("num_edges", static_cast<double>(num_edges));
  json.Add("num_nodes", static_cast<double>(num_nodes));
  WallTimer total_timer;

  const size_t thread_counts[] = {1, 2, 4, 8};
  struct NamedStream {
    const char* name;
    EdgeStream& stream;
  };
  EdgeListStream list_stream(el);
  UndirectedGraphStream csr_stream(g);
  NamedStream streams[] = {{"edge-list", list_stream}, {"csr", csr_stream}};

  for (const NamedStream& ns : streams) {
    Measurement scalar = Measure(num_edges, reps, [&] {
      return SeedScalarPass(ns.stream, byte_alive, degrees).weight;
    });
    Report(ns.name, "seed-scalar", scalar, scalar.edges_per_sec, csv, json);

    double batched_weight = -1;
    for (size_t threads : thread_counts) {
      PassEngine engine(PassEngineOptions{.num_threads = threads});
      Measurement m = Measure(num_edges, reps, [&] {
        return engine.RunUndirected(ns.stream, word_alive, degrees).weight;
      });
      char config[32];
      std::snprintf(config, sizeof(config), "engine-%zut", threads);
      Report(ns.name, config, m, scalar.edges_per_sec, csv, json);

      if (batched_weight < 0) batched_weight = m.weight;
      if (m.weight != batched_weight || m.weight != scalar.weight) {
        std::fprintf(stderr,
                     "FAIL: weight checksum mismatch (%s, %zu threads)\n",
                     ns.name, threads);
        return 1;
      }
    }
    std::printf("\n");
  }
  // Observability overhead gate: the instrumented engine with the metrics
  // registry live (tracing idle, the shipped default) must stay within 2%
  // of the same binary with the registry disabled. The pass hot loop is
  // atomic-free — instrumentation fires per round, not per edge — so a
  // breach means someone moved a metric write into the inner loop.
  {
    PassEngine engine(PassEngineOptions{.num_threads = 1});
    const int orep = std::max(reps * 5, 15);  // passes are cheap; drown noise
    auto run_pass = [&] {
      return engine.RunUndirected(list_stream, word_alive, degrees).weight;
    };
    obs::MetricsRegistry::Get().set_enabled(false);
    Measurement off = Measure(num_edges, orep, run_pass);
    obs::MetricsRegistry::Get().set_enabled(true);
    Measurement on = Measure(num_edges, orep, run_pass);
    const double overhead =
        off.edges_per_sec > 0 ? 1.0 - on.edges_per_sec / off.edges_per_sec
                              : 0.0;
    std::printf("obs overhead: metrics-on %.2f Medges/s vs metrics-off "
                "%.2f Medges/s (%+.2f%%, gate < 2%%)\n",
                on.edges_per_sec / 1e6, off.edges_per_sec / 1e6,
                100 * overhead);
    json.Add("obs.metrics_on_edges_per_sec", on.edges_per_sec);
    json.Add("obs.metrics_off_edges_per_sec", off.edges_per_sec);
    json.Add("obs.overhead_frac", overhead);
    if (overhead > 0.02) {
      std::fprintf(stderr,
                   "FAIL: metrics-on pass is %.2f%% slower than metrics-off "
                   "(gate: 2%%)\n",
                   100 * overhead);
      return 1;
    }
  }

  json.Add("total_wall_s", total_timer.ElapsedSeconds());
  Status js = json.Write();
  if (!js.ok()) {
    std::fprintf(stderr, "warning: no JSON output: %s\n",
                 js.ToString().c_str());
  }
  return 0;
}
