// The multi-tenant serving tier under load: one writer replays a
// sliding-window update stream and publishes each settled answer into the
// epoch-based AnswerPlane while a QueryService reader pool answers a
// closed-loop client workload of batched density/membership/snapshot
// queries. Measures what serving costs the writer and what latency the
// readers deliver.
//
// Usage: bench_serve [smoke]
//
//   smoke    CI gate: fails (exit 1) when the writer under concurrent
//            serving (4 readers + a paced client) sustains less than 80%
//            of its standalone apply throughput, when any query batch
//            fails with a non-backpressure status, when fewer than 100
//            queries are actually served, or when any answer a client
//            observed is not bit-for-bit one writer publication (a torn
//            read). Emits bench_results/BENCH_serve.json either way.
//   (none)   figure mode: serving latency percentiles and writer
//            throughput across reader-pool sizes.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "dynamic/dynamic_densest.h"
#include "dynamic/replay.h"
#include "gen/erdos_renyi.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/answer_plane.h"
#include "serve/query_service.h"
#include "stream/memory_stream.h"
#include "stream/update_stream.h"

namespace {

using namespace densest;

/// The smoke contract: serving must cost the writer at most this fraction
/// of its standalone apply throughput.
constexpr double kMinServingRatio = 0.80;
constexpr size_t kReaders = 4;
constexpr double kClientQps = 2000;
constexpr size_t kClientBatch = 16;

/// One (query, result) pair a client observed; verified against the
/// writer's publication log after the writer joins.
struct Observation {
  ServeQuery query;
  ServeResult result;
};

std::vector<EdgeUpdate> MakeWorkload() {
  EdgeList edges = ErdosRenyiGnm(32768, 500000, 5150);
  EdgeListStream base(edges);
  SlidingWindowUpdateStream windowed(base, 250000);
  std::vector<EdgeUpdate> updates;
  updates.reserve(750000);
  windowed.Reset();
  EdgeUpdate u;
  while (windowed.Next(&u)) updates.push_back(u);
  return updates;
}

/// Best-of-2 replay with no serving attached: the standalone baseline the
/// 80% gate compares against.
StatusOr<double> StandaloneUpdatesPerSec(const std::vector<EdgeUpdate>& updates,
                                         NodeId num_nodes) {
  double best = 0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto engine = DynamicDensest::Create(num_nodes);
    if (!engine.ok()) return engine.status();
    MemoryUpdateStream stream(updates, num_nodes);
    ReplayOptions opt;
    opt.query_every = 0;
    auto report = ReplayUpdates(stream, **engine, opt);
    if (!report.ok()) return report.status();
    best = std::max(best, report->updates_per_sec);
  }
  return best;
}

/// What one serving run produced.
struct ServingRun {
  double updates_per_sec = 0;
  uint64_t publications = 0;
  uint64_t batches_ok = 0;
  uint64_t batches_shed = 0;
  uint64_t queries_observed = 0;
  QueryServiceStats stats;
  std::vector<Observation> observations;
  std::vector<PlaneSnapshot> writer_log;
  Answer final_answer;
};

StatusOr<ServingRun> RunServing(const std::vector<EdgeUpdate>& updates,
                                NodeId num_nodes, size_t readers,
                                bool keep_observations) {
  ServingRun run;
  auto engine = DynamicDensest::Create(num_nodes);
  if (!engine.ok()) return engine.status();
  MemoryUpdateStream stream(updates, num_nodes);

  AnswerPlane plane(num_nodes);
  if (keep_observations) plane.EnableWriterLog();
  QueryServiceOptions qopt;
  qopt.num_readers = readers;
  QueryService service(plane, qopt);

  ReplayOptions ropt;
  ropt.query_every = 0;
  ropt.publish = &plane;
  ropt.publish_every = 4096;

  std::atomic<bool> writer_done{false};
  StatusOr<ReplayReport> report = Status::Internal("writer did not run");
  std::thread writer([&] {
    report = ReplayUpdates(stream, **engine, ropt);
    writer_done.store(true, std::memory_order_release);
  });

  // Closed-loop client: 70/20/10 density/membership/snapshot batches at a
  // modest paced rate, so the gate measures serving interference, not a
  // saturation stress.
  Rng rng(Mix64(7));
  std::vector<ServeQuery> queries(kClientBatch);
  std::vector<ServeResult> results;
  Status client_status = Status::OK();
  WallTimer client_wall;
  uint64_t submitted = 0;
  while (!writer_done.load(std::memory_order_acquire)) {
    for (ServeQuery& q : queries) {
      const uint64_t draw = rng.UniformU64(10);
      if (draw < 7) {
        q = ServeQuery{ServeQuery::Kind::kDensity, 0};
      } else if (draw < 9) {
        q = ServeQuery{ServeQuery::Kind::kMembership,
                       static_cast<NodeId>(rng.UniformU64(num_nodes))};
      } else {
        q = ServeQuery{ServeQuery::Kind::kSnapshot, 0};
      }
    }
    Status s = service.QueryBatch(queries, &results);
    submitted += queries.size();
    if (s.ok()) {
      ++run.batches_ok;
      run.queries_observed += results.size();
      if (keep_observations) {
        for (size_t i = 0; i < results.size(); ++i) {
          run.observations.push_back({queries[i], std::move(results[i])});
        }
      }
    } else if (s.code() == Status::Code::kUnavailable) {
      ++run.batches_shed;  // backpressure is a normal serving outcome
    } else {
      client_status = s;
      break;
    }
    const double ahead = static_cast<double>(submitted) / kClientQps -
                         client_wall.ElapsedSeconds();
    if (ahead > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(ahead));
    }
  }
  writer.join();
  service.Stop();
  if (!client_status.ok()) return client_status;
  if (!report.ok()) return report.status();

  run.updates_per_sec = report->updates_per_sec;
  run.publications = plane.epoch();
  run.stats = service.stats();
  run.final_answer = plane.ReadAnswer();
  if (keep_observations) run.writer_log = plane.writer_log();
  return run;
}

/// Bit-exact doubles, the repo's snapshot-oracle convention.
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool SameAnswer(const Answer& a, const Answer& b) {
  return SameBits(a.density, b.density) &&
         SameBits(a.upper_bound, b.upper_bound) && a.size == b.size &&
         a.certified == b.certified && a.stale == b.stale &&
         a.epoch == b.epoch;
}

/// Every answer a client observed must be one writer publication verbatim
/// — epoch 0 is the pre-first-publish default, any other epoch indexes
/// the writer log and must match bit-for-bit (including membership and
/// the full snapshot node set). Returns the number of torn observations.
uint64_t CountTornReads(const ServingRun& run) {
  uint64_t torn = 0;
  // Epoch 0 is the pre-first-publish plane: the empty graph's default
  // Answer (zero density, certified — rho* = 0 <= 0).
  const Answer empty;
  for (const Observation& ob : run.observations) {
    const Answer& got = ob.result.answer;
    if (got.epoch == 0) {
      if (!SameAnswer(got, empty)) ++torn;
      continue;
    }
    if (got.epoch > run.writer_log.size()) {
      ++torn;
      continue;
    }
    const PlaneSnapshot& want = run.writer_log[got.epoch - 1];
    Answer expect = want.answer;
    expect.epoch = got.epoch;
    if (!SameAnswer(got, expect)) {
      ++torn;
      continue;
    }
    if (ob.query.kind == ServeQuery::Kind::kMembership) {
      const bool member =
          std::binary_search(want.members.begin(), want.members.end(),
                             ob.query.node);
      if (ob.result.member != member) ++torn;
    } else if (ob.query.kind == ServeQuery::Kind::kSnapshot) {
      if (ob.result.nodes != want.members ||
          ob.result.prefix_updates != want.prefix_updates) {
        ++torn;
      }
    }
  }
  return torn;
}

int RunSmoke() {
  bench::Banner("Serving tier [smoke]",
                "writer throughput under concurrent readers + torn-read gate");
  bench::BenchJson json("serve");
  bool ok = true;

  const std::vector<EdgeUpdate> updates = MakeWorkload();
  const NodeId num_nodes = 32768;

  StatusOr<double> standalone = StandaloneUpdatesPerSec(updates, num_nodes);
  if (!standalone.ok()) {
    std::printf("FAIL: %s\n", standalone.status().ToString().c_str());
    return 1;
  }
  std::printf("standalone writer: %.2fM updates/s (best of 2)\n",
              *standalone / 1e6);
  json.Add("standalone_updates_per_sec", *standalone);

  // Observability overhead gate: the writer with the metrics registry live
  // (tracing idle) must stay within 2% of the same replay with the
  // registry disabled. The per-update apply path is metric-free —
  // instrumentation diffs engine stats per batch — so a breach means a
  // metric write crept into the update loop.
  obs::MetricsRegistry::Get().set_enabled(false);
  StatusOr<double> metrics_off = StandaloneUpdatesPerSec(updates, num_nodes);
  obs::MetricsRegistry::Get().set_enabled(true);
  if (!metrics_off.ok()) {
    std::printf("FAIL: %s\n", metrics_off.status().ToString().c_str());
    return 1;
  }
  const double obs_overhead =
      *metrics_off > 0 ? 1.0 - *standalone / *metrics_off : 0.0;
  std::printf("obs overhead: metrics-on %.2fM vs metrics-off %.2fM updates/s "
              "(%+.2f%%, gate < 2%%)\n",
              *standalone / 1e6, *metrics_off / 1e6, 100 * obs_overhead);
  json.Add("obs.metrics_off_updates_per_sec", *metrics_off);
  json.Add("obs.overhead_frac", obs_overhead);
  if (obs_overhead > 0.02) {
    std::printf("FAIL: metrics-on writer is %.2f%% slower than metrics-off "
                "(gate: 2%%)\n",
                100 * obs_overhead);
    ok = false;
  }

  // Record spans for the serving runs below; the timeline rides out as a
  // CI artifact next to the metrics exposition.
  obs::TraceRecorder::Get().Start();

  // Best-of-2 like the standalone side, so the gate compares like with
  // like on a noisy shared runner. Every attempt's observations get the
  // torn-read audit; only the faster attempt's numbers are reported.
  StatusOr<ServingRun> serving = Status::Internal("never ran");
  uint64_t torn = 0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    StatusOr<ServingRun> r =
        RunServing(updates, num_nodes, kReaders, /*keep_observations=*/true);
    if (!r.ok()) {
      std::printf("FAIL: %s\n", r.status().ToString().c_str());
      return 1;
    }
    torn += CountTornReads(*r);
    if (!serving.ok() || r->updates_per_sec > serving->updates_per_sec) {
      serving = std::move(r);
    }
  }
  const double ratio =
      *standalone > 0 ? serving->updates_per_sec / *standalone : 0;
  json.Add("serving_updates_per_sec", serving->updates_per_sec);
  json.Add("serving_ratio", ratio);
  json.Add("publications", static_cast<double>(serving->publications));
  json.Add("queries_served", static_cast<double>(serving->stats.queries_served));
  json.Add("batches_shed", static_cast<double>(serving->batches_shed));
  json.Add("latency_p50_us", serving->stats.latency_p50_us);
  json.Add("latency_p99_us", serving->stats.latency_p99_us);
  std::printf(
      "serving writer (%zu readers, %.0f qps client): %.2fM updates/s "
      "(%.0f%% of standalone, gate >=%.0f%%), %llu publications\n",
      kReaders, kClientQps, serving->updates_per_sec / 1e6, 100 * ratio,
      100 * kMinServingRatio,
      static_cast<unsigned long long>(serving->publications));
  std::printf(
      "client: %llu batches ok, %llu shed; service: %llu queries  "
      "p50=%.1fus p99=%.1fus\n",
      static_cast<unsigned long long>(serving->batches_ok),
      static_cast<unsigned long long>(serving->batches_shed),
      static_cast<unsigned long long>(serving->stats.queries_served),
      serving->stats.latency_p50_us, serving->stats.latency_p99_us);
  if (ratio < kMinServingRatio) {
    std::printf("FAIL: serving cost the writer more than %.0f%%\n",
                100 * (1 - kMinServingRatio));
    ok = false;
  }
  if (serving->stats.queries_served < 100) {
    std::printf("FAIL: only %llu queries served; serving never engaged\n",
                static_cast<unsigned long long>(
                    serving->stats.queries_served));
    ok = false;
  }

  json.Add("observations", static_cast<double>(serving->observations.size()));
  json.Add("torn_reads", static_cast<double>(torn));
  std::printf("torn-read audit: %zu observations vs %zu publications: %llu "
              "torn\n",
              serving->observations.size(), serving->writer_log.size(),
              static_cast<unsigned long long>(torn));
  if (torn > 0) {
    std::printf("FAIL: observed answers diverged from the writer log\n");
    ok = false;
  }
  if (serving->final_answer.certified &&
      serving->final_answer.density > serving->final_answer.upper_bound) {
    std::printf("FAIL: final served answer outside its certified band\n");
    ok = false;
  }

  json.Add("serve_ok", ok ? 1 : 0);
  if (Status js = json.Write(); !js.ok()) {  // also creates bench_results/
    std::printf("warning: %s\n", js.ToString().c_str());
  }

  // The smoke run's own observability artifacts: the full exposition and
  // the chrome://tracing timeline, validated by tools/check_obs.py in CI.
  obs::TraceRecorder::Get().Stop();
  if (Status w = obs::WriteMetricsFile("bench_results/BENCH_serve_metrics.prom");
      w.ok()) {
    std::printf("metrics written to bench_results/BENCH_serve_metrics.prom\n");
  } else {
    std::printf("warning: %s\n", w.ToString().c_str());
  }
  if (Status w = obs::TraceRecorder::Get().DrainToJsonFile(
          "bench_results/BENCH_serve_trace.json");
      w.ok()) {
    std::printf("trace written to bench_results/BENCH_serve_trace.json\n");
  } else {
    std::printf("warning: %s\n", w.ToString().c_str());
  }
  std::printf("%s\n", ok ? "SMOKE OK" : "SMOKE FAILED");
  return ok ? 0 : 1;
}

int RunFigure() {
  bench::Banner("Serving tier",
                "writer throughput and query latency across reader pools");
  auto csv = bench::OpenCsv(
      "serve", {"readers", "updates_per_sec", "publications",
                "queries_served", "latency_p50_us", "latency_p99_us"});
  const std::vector<EdgeUpdate> updates = MakeWorkload();
  const NodeId num_nodes = 32768;
  for (const size_t readers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    StatusOr<ServingRun> run =
        RunServing(updates, num_nodes, readers, /*keep_observations=*/false);
    if (!run.ok()) {
      std::printf("FAIL: %s\n", run.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "readers=%zu  %6.2fM updates/s  %llu publications  %llu queries  "
        "p50=%.1fus p99=%.1fus\n",
        readers, run->updates_per_sec / 1e6,
        static_cast<unsigned long long>(run->publications),
        static_cast<unsigned long long>(run->stats.queries_served),
        run->stats.latency_p50_us, run->stats.latency_p99_us);
    if (csv.ok()) {
      csv->AddRow({std::to_string(readers),
                   CsvWriter::Num(run->updates_per_sec),
                   std::to_string(run->publications),
                   std::to_string(run->stats.queries_served),
                   CsvWriter::Num(run->stats.latency_p50_us),
                   CsvWriter::Num(run->stats.latency_p99_us)});
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "smoke") == 0) return RunSmoke();
  return RunFigure();
}
