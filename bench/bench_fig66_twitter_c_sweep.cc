// Reproduces Figure 6.6: density and passes vs c on the twitter stand-in
// at eps=1, delta=2. Twitter's celebrity skew pushes the best c far from 1.

#include <cstdio>

#include "bench_common.h"
#include "core/algorithm3.h"
#include "gen/datasets.h"
#include "graph/directed_graph.h"

int main() {
  using namespace densest;
  bench::Banner("Figure 6.6",
                "twitter-sim: density and passes vs c at eps=1, delta=2");
  auto csv =
      bench::OpenCsv("fig66_twitter_c_sweep", {"c", "rho", "passes"});

  DirectedGraph g = DirectedGraph::FromEdgeList(MakeTwitterSim(4));
  std::printf("graph: |V|=%u |E|=%llu\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  CSearchOptions opt;
  opt.delta = 2.0;
  opt.epsilon = 1.0;
  opt.record_trace = false;
  auto r = RunCSearch(g, opt);
  if (!r.ok()) {
    std::printf("c-search failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("%-14s %10s %8s\n", "c", "rho", "passes");
  for (const DirectedDensestResult& run : r->sweep) {
    std::printf("%-14.6g %10.3f %8llu\n", run.c, run.density,
                static_cast<unsigned long long>(run.passes));
    if (csv.ok()) {
      csv->AddRow({CsvWriter::Num(run.c), CsvWriter::Num(run.density),
                   std::to_string(run.passes)});
    }
  }
  std::printf("\nbest: c=%.6g rho=%.3f (|S|=%zu |T|=%zu)\n", r->best.c,
              r->best.density, r->best.s_nodes.size(),
              r->best.t_nodes.size());
  std::printf("fused: %llu physical scans for %zu c values\n",
              static_cast<unsigned long long>(r->physical_scans),
              r->sweep.size());
  std::printf("\nPaper's observation to reproduce: unlike livejournal, the "
              "best c is NOT concentrated around 1 (celebrity skew: few "
              "users followed by millions).\n");
  return 0;
}
