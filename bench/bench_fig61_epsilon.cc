// Reproduces Figure 6.1: the effect of eps on (a) the approximation
// relative to the eps=0 run and (b) the number of passes, on the flickr
// and im stand-ins. The whole eps grid is fused through MultiRunEngine:
// every physical scan of the stream feeds all still-active eps runs, so
// the sweep costs max-over-eps(passes) scans instead of the sum.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/algorithm1.h"
#include "core/multi_run.h"
#include "gen/datasets.h"
#include "graph/undirected_graph.h"
#include "stream/memory_stream.h"

namespace {

using namespace densest;

void Sweep(const char* name, const UndirectedGraph& g, CsvWriter* csv) {
  std::vector<double> epsilons;
  for (double eps = 0.0; eps <= 2.51; eps += 0.25) epsilons.push_back(eps);

  Algorithm1Options base;
  base.record_trace = false;

  UndirectedGraphStream stream(g);
  MultiRunEngine engine;
  auto runs = RunAlgorithm1EpsilonSweep(stream, base, epsilons, &engine);
  if (!runs.ok()) {
    std::printf("sweep failed: %s\n", runs.status().ToString().c_str());
    return;
  }

  // epsilons[0] == 0: the sweep's first run doubles as the baseline.
  const UndirectedDensestResult& baseline = (*runs)[0];
  std::printf("\n%s: rho=%.2f at eps=0 (%llu passes)\n", name,
              baseline.density,
              static_cast<unsigned long long>(baseline.passes));
  std::printf("%6s %18s %8s\n", "eps", "approx wrt eps=0", "passes");

  for (size_t i = 0; i < epsilons.size(); ++i) {
    const UndirectedDensestResult& r = (*runs)[i];
    double rel = r.density / baseline.density;
    std::printf("%6.2f %18.4f %8llu\n", epsilons[i], rel,
                static_cast<unsigned long long>(r.passes));
    if (csv != nullptr) {
      csv->AddRow({name, CsvWriter::Num(epsilons[i]), CsvWriter::Num(r.density),
                   CsvWriter::Num(rel), std::to_string(r.passes)});
    }
  }
  std::printf("fused: %llu physical scans for all %zu eps values "
              "(%llu run-by-run)\n",
              static_cast<unsigned long long>(engine.last_physical_passes()),
              epsilons.size(),
              static_cast<unsigned long long>(engine.last_logical_passes()));
}

}  // namespace

int main() {
  using namespace densest;
  bench::Banner("Figure 6.1",
                "eps vs approximation (relative to eps=0) and eps vs passes");
  auto csv = bench::OpenCsv(
      "fig61_epsilon", {"dataset", "eps", "rho", "rho_rel_eps0", "passes"});
  CsvWriter* csv_ptr = csv.ok() ? &csv.value() : nullptr;

  {
    UndirectedGraph flickr = UndirectedGraph::FromEdgeList(MakeFlickrSim(1));
    Sweep("FLICKR-sim", flickr, csv_ptr);
  }
  {
    UndirectedGraph im = UndirectedGraph::FromEdgeList(MakeImSim(2));
    Sweep("IM-sim", im, csv_ptr);
  }
  std::printf("\nPaper's observation to reproduce: eps in [0.5, 1] halves "
              "the passes while losing ~10%% density; quality is not "
              "monotone in eps.\n");
  return 0;
}
