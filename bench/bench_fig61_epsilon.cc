// Reproduces Figure 6.1: the effect of eps on (a) the approximation
// relative to the eps=0 run and (b) the number of passes, on the flickr
// and im stand-ins.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/algorithm1.h"
#include "gen/datasets.h"
#include "graph/undirected_graph.h"

namespace {

using namespace densest;

void Sweep(const char* name, const UndirectedGraph& g, CsvWriter* csv) {
  Algorithm1Options base;
  base.epsilon = 0.0;
  base.record_trace = false;
  auto baseline = RunAlgorithm1(g, base);
  if (!baseline.ok()) return;
  std::printf("\n%s: rho=%.2f at eps=0 (%llu passes)\n", name,
              baseline->density,
              static_cast<unsigned long long>(baseline->passes));
  std::printf("%6s %18s %8s\n", "eps", "approx wrt eps=0", "passes");

  for (double eps = 0.0; eps <= 2.51; eps += 0.25) {
    Algorithm1Options opt;
    opt.epsilon = eps;
    opt.record_trace = false;
    auto r = RunAlgorithm1(g, opt);
    if (!r.ok()) continue;
    double rel = r->density / baseline->density;
    std::printf("%6.2f %18.4f %8llu\n", eps, rel,
                static_cast<unsigned long long>(r->passes));
    if (csv != nullptr) {
      csv->AddRow({name, CsvWriter::Num(eps), CsvWriter::Num(r->density),
                   CsvWriter::Num(rel), std::to_string(r->passes)});
    }
  }
}

}  // namespace

int main() {
  using namespace densest;
  bench::Banner("Figure 6.1",
                "eps vs approximation (relative to eps=0) and eps vs passes");
  auto csv = bench::OpenCsv(
      "fig61_epsilon", {"dataset", "eps", "rho", "rho_rel_eps0", "passes"});
  CsvWriter* csv_ptr = csv.ok() ? &csv.value() : nullptr;

  {
    UndirectedGraph flickr = UndirectedGraph::FromEdgeList(MakeFlickrSim(1));
    Sweep("FLICKR-sim", flickr, csv_ptr);
  }
  {
    UndirectedGraph im = UndirectedGraph::FromEdgeList(MakeImSim(2));
    Sweep("IM-sim", im, csv_ptr);
  }
  std::printf("\nPaper's observation to reproduce: eps in [0.5, 1] halves "
              "the passes while losing ~10%% density; quality is not "
              "monotone in eps.\n");
  return 0;
}
