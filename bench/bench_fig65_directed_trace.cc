// Reproduces Figure 6.5: the per-pass behaviour of |S|, |T| and |E(S,T)|
// for the best c on the livejournal stand-in at eps=1 (showing the
// "alternate" peeling of Algorithm 3).

#include <cstdio>

#include "bench_common.h"
#include "core/algorithm3.h"
#include "gen/datasets.h"
#include "graph/directed_graph.h"

int main() {
  using namespace densest;
  bench::Banner("Figure 6.5",
                "livejournal-sim: |S|, |T|, |E(S,T)| per pass at best c, eps=1");
  auto csv = bench::OpenCsv(
      "fig65_directed_trace",
      {"pass", "s_size", "t_size", "edges", "rho", "peeled_side"});

  DirectedGraph g = DirectedGraph::FromEdgeList(MakeLiveJournalSim(3));

  // First find the best c with a delta=2 search (like the paper).
  CSearchOptions search;
  search.delta = 2.0;
  search.epsilon = 1.0;
  search.record_trace = false;
  auto sweep = RunCSearch(g, search);
  if (!sweep.ok()) return 1;
  const double best_c = sweep->best.c;
  std::printf("best c = %.4g (rho=%.3f over %zu c values)\n\n", best_c,
              sweep->best.density, sweep->sweep.size());

  // Re-run with tracing at the best c.
  Algorithm3Options opt;
  opt.c = best_c;
  opt.epsilon = 1.0;
  auto r = RunAlgorithm3(g, opt);
  if (!r.ok()) return 1;

  std::printf("%6s %10s %10s %14s %10s %6s\n", "pass", "|S|", "|T|",
              "|E(S,T)|", "rho", "peel");
  for (const DirectedPassSnapshot& s : r->trace) {
    std::printf("%6llu %10u %10u %14.0f %10.3f %6s\n",
                static_cast<unsigned long long>(s.pass), s.s_size, s.t_size,
                s.weight, s.density, s.removed_from_s ? "S" : "T");
    if (csv.ok()) {
      csv->AddRow({std::to_string(s.pass), std::to_string(s.s_size),
                   std::to_string(s.t_size), CsvWriter::Num(s.weight),
                   CsvWriter::Num(s.density),
                   s.removed_from_s ? "S" : "T"});
    }
  }
  std::printf("\nPaper's observation to reproduce: the simplified rule "
              "alternates between peeling S and T while nodes and edges "
              "fall dramatically with the passes.\n");
  return 0;
}
