// Reproduces Figure 6.7: wall-clock time per MapReduce pass on the im
// stand-in, eps in {0, 1, 2}. The jobs execute for real in the simulator —
// scanning the input as an edge stream, combining map-side, spilling the
// shuffle under a byte budget — and the reported minutes come from the
// calibrated cluster cost model (2000 mappers / 2000 reducers).
//
// Usage: bench_fig67_mapreduce [smoke]
//
//   smoke  CI gate on a small binary-file graph: fails (exit 1) when the
//          MR driver diverges from streaming RunAlgorithm1, when the
//          degree job's shuffled records exceed the combiner ceiling
//          (chunks x |V| — the O(|V_alive|) promise), or when a shuffle
//          budget below the KV footprint fails to spill. Emits
//          bench_results/BENCH_mr_shuffle.json either way.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "bench_common.h"
#include "common/timer.h"
#include "core/algorithm1.h"
#include "gen/datasets.h"
#include "gen/erdos_renyi.h"
#include "mapreduce/mr_densest.h"
#include "mapreduce/stream_source.h"
#include "stream/file_stream.h"
#include "stream/pass_cursor.h"

namespace {

using namespace densest;

/// The smoke gates; false on any failure. Metrics gathered before a
/// failure stay in `json` — the caller writes it on every exit path.
bool RunSmokeGates(bench::BenchJson& json) {
  bool ok = true;

  // A disk-backed input, like the real configuration. Pid-unique name:
  // concurrent invocations must not clobber each other's input.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("bench_fig67_smoke_" + std::to_string(::getpid()) + ".bin"))
          .string();
  EdgeList el = ErdosRenyiGnm(3000, 40000, 67);
  if (!WriteBinaryEdgeFile(path, el, /*weighted=*/false).ok()) {
    std::printf("FAIL: cannot write smoke input\n");
    return false;
  }
  auto stream = BinaryFileEdgeStream::Open(path);
  if (!stream.ok()) {
    std::printf("FAIL: %s\n", stream.status().ToString().c_str());
    std::remove(path.c_str());
    return false;
  }

  // Gate 1: result divergence. A spill budget far below the job's KV
  // footprint (40k edges -> ~1 MB of degree-job records) must still
  // reproduce the streaming answer bit for bit.
  Algorithm1Options stream_opt;
  stream_opt.epsilon = 0.0;
  auto streaming = RunAlgorithm1(**stream, stream_opt);
  MapReduceEnv env;
  MrDensestOptions mr_opt;
  mr_opt.epsilon = 0.0;
  mr_opt.spill_budget_bytes = 64 << 10;
  auto mr = RunMrDensestUndirected(env, **stream, mr_opt);
  if (!streaming.ok() || !mr.ok()) {
    std::printf("FAIL: driver error (%s / %s)\n",
                streaming.ok() ? "ok" : streaming.status().ToString().c_str(),
                mr.ok() ? "ok" : mr.status().ToString().c_str());
    std::remove(path.c_str());
    return false;
  }
  const bool identical = mr->result.nodes == streaming->nodes &&
                         mr->result.density == streaming->density &&
                         mr->result.passes == streaming->passes;
  json.Add("identical_to_streaming", identical ? 1 : 0);
  std::printf("MR vs streaming: %s (rho=%.4f, %llu passes, %llu input "
              "scans)\n",
              identical ? "IDENTICAL" : "DIVERGED", mr->result.density,
              static_cast<unsigned long long>(mr->result.passes),
              static_cast<unsigned long long>(mr->input_scans));
  if (!identical) ok = false;

  // Gate 1b: stream-scan IO charge. The first-pass jobs scan the binary
  // file through StreamRecordSource; a zero map_input_bytes total means
  // the cost model stopped charging the DFS read the mappers perform.
  json.Add("map_input_bytes",
           static_cast<double>(mr->totals.map_input_bytes));
  std::printf("map input scan: %llu DFS bytes charged\n",
              static_cast<unsigned long long>(mr->totals.map_input_bytes));
  if (mr->totals.map_input_bytes <
      el.num_edges() * StreamRecordSource::kDfsRecordBytes) {
    std::printf("FAIL: map_input_bytes below one full input scan\n");
    ok = false;
  }

  // Gate 2: spill engagement. Under that budget the first-pass shuffles
  // cannot fit in memory; a zero spill count means the budget is ignored.
  json.Add("spill_bytes_written",
           static_cast<double>(mr->totals.spill_bytes_written));
  json.Add("spill_bytes_read",
           static_cast<double>(mr->totals.spill_bytes_read));
  std::printf("shuffle spill: %llu bytes written, %llu read back\n",
              static_cast<unsigned long long>(mr->totals.spill_bytes_written),
              static_cast<unsigned long long>(mr->totals.spill_bytes_read));
  if (mr->totals.spill_bytes_written == 0) {
    std::printf("FAIL: spill budget below the KV footprint never spilled\n");
    ok = false;
  }

  // Gate 3: combiner ceiling on the degree job. Raw map output is 2|E|
  // records; what crosses the shuffle must be bounded by the per-chunk
  // distinct-key ceiling (chunks x |V|), the O(|V_alive|) contract.
  PassCursor cursor(**stream);
  StreamRecordSource source(cursor);
  JobOptions opts;
  JobStats degree_stats;
  auto degrees = MrDegreeJobCombined(env, source, opts, &degree_stats);
  if (!degrees.ok()) {
    std::printf("FAIL: %s\n", degrees.status().ToString().c_str());
    std::remove(path.c_str());
    return false;
  }
  const uint64_t chunks =
      (el.num_edges() + opts.map_chunk_records - 1) / opts.map_chunk_records;
  const uint64_t ceiling = chunks * el.num_nodes();
  json.Add("degree_map_output_records",
           static_cast<double>(degree_stats.map_output_records));
  json.Add("degree_shuffle_records",
           static_cast<double>(degree_stats.combine_output_records));
  json.Add("degree_combiner_ceiling", static_cast<double>(ceiling));
  std::printf("degree job: map_out=%llu shuffled=%llu ceiling=%llu\n",
              static_cast<unsigned long long>(degree_stats.map_output_records),
              static_cast<unsigned long long>(
                  degree_stats.combine_output_records),
              static_cast<unsigned long long>(ceiling));
  if (degree_stats.combine_output_records > ceiling ||
      degree_stats.combine_output_records >=
          degree_stats.map_output_records) {
    std::printf("FAIL: degree shuffle regressed above the combiner "
                "ceiling\n");
    ok = false;
  }

  std::remove(path.c_str());
  return ok;
}

int RunSmoke() {
  bench::Banner("Figure 6.7 [smoke]",
                "MR-vs-streaming divergence + combiner-ceiling + spill gate");
  bench::BenchJson json("mr_shuffle");
  const bool ok = RunSmokeGates(json);
  // Written on success and failure alike: a red CI leg still uploads the
  // partial metrics, which is when they are needed most.
  if (Status js = json.Write(); !js.ok()) {
    std::printf("warning: %s\n", js.ToString().c_str());
  }
  std::printf("%s\n", ok ? "SMOKE OK" : "SMOKE FAILED");
  return ok ? 0 : 1;
}

int RunFigure() {
  bench::Banner("Figure 6.7",
                "im-sim: simulated MapReduce minutes per pass (2000 mappers"
                "/2000 reducers model)");
  auto csv = bench::OpenCsv("fig67_mapreduce",
                            {"eps", "pass", "sim_minutes", "rho"});

  EdgeList im = MakeImSim(2);
  std::printf("graph: |V|=%u |E|=%llu\n", im.num_nodes(),
              static_cast<unsigned long long>(im.num_edges()));

  // Calibrated against the paper's scale: im is ~2500x larger than the
  // stand-in, so per-record costs are scaled by 2500 to emulate the real
  // input volume. The base per-record cost (~93 us incl. disk and sort) is
  // chosen so the first eps=0 pass lands near the paper's ~60 minutes;
  // the *shape* (decay to the job-overhead floor) is the reproduced object.
  CostModel model;
  model.num_mappers = 2000;
  model.num_reducers = 2000;
  model.map_seconds_per_record = 9.3e-5 * 2500;
  model.map_input_seconds_per_byte = 2e-9 * 2500;
  model.reduce_seconds_per_record = 9.3e-5 * 2500;
  model.shuffle_seconds_per_byte = 4e-9 * 2500;
  model.combine_seconds_per_record = 5e-7 * 2500;
  model.spill_seconds_per_byte = 1e-9 * 2500;
  model.job_overhead_seconds = 75.0;

  WallTimer wall;
  for (double eps : {0.0, 1.0, 2.0}) {
    MapReduceEnv env(model);
    MrDensestOptions opt;
    opt.epsilon = eps;
    // Out-of-core posture even on the stand-in: bound each job's resident
    // shuffle at 4 MiB; the first passes spill, the tail fits.
    opt.spill_budget_bytes = 4 << 20;
    auto r = RunMrDensestUndirected(env, im, opt);
    if (!r.ok()) {
      std::printf("MR driver failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("\neps=%.0f (%llu passes, best rho=%.2f, %llu MB spilled)\n",
                eps, static_cast<unsigned long long>(r->result.passes),
                r->result.density,
                static_cast<unsigned long long>(
                    r->totals.spill_bytes_written >> 20));
    std::printf("  %-6s %14s\n", "pass", "sim minutes");
    for (size_t i = 0; i < r->pass_seconds.size(); ++i) {
      double minutes = r->pass_seconds[i] / 60.0;
      std::printf("  %-6zu %14.1f\n", i + 1, minutes);
      if (csv.ok()) {
        csv->AddRow({CsvWriter::Num(eps), std::to_string(i + 1),
                     CsvWriter::Num(minutes),
                     CsvWriter::Num(r->result.trace[i].density)});
      }
    }
  }
  std::printf("\n[real local execution time: %.1fs]\n", wall.ElapsedSeconds());
  std::printf("Paper's observation to reproduce: per-pass time decays to a "
              "job-overhead floor as the graph shrinks; the whole im run "
              "stays under ~260 minutes.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "smoke") == 0) return RunSmoke();
  return RunFigure();
}
