// Reproduces Figure 6.7: wall-clock time per MapReduce pass on the im
// stand-in, eps in {0, 1, 2}. The jobs execute for real in the simulator;
// the reported minutes come from the calibrated cluster cost model
// (2000 mappers / 2000 reducers, per DESIGN.md section 3).

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "gen/datasets.h"
#include "mapreduce/mr_densest.h"

int main() {
  using namespace densest;
  bench::Banner("Figure 6.7",
                "im-sim: simulated MapReduce minutes per pass (2000 mappers"
                "/2000 reducers model)");
  auto csv = bench::OpenCsv("fig67_mapreduce",
                            {"eps", "pass", "sim_minutes", "rho"});

  EdgeList im = MakeImSim(2);
  std::printf("graph: |V|=%u |E|=%llu\n", im.num_nodes(),
              static_cast<unsigned long long>(im.num_edges()));

  // Calibrated against the paper's scale: im is ~2500x larger than the
  // stand-in, so per-record costs are scaled by 2500 to emulate the real
  // input volume. The base per-record cost (~93 us incl. disk and sort) is
  // chosen so the first eps=0 pass lands near the paper's ~60 minutes;
  // the *shape* (decay to the job-overhead floor) is the reproduced object.
  CostModel model;
  model.num_mappers = 2000;
  model.num_reducers = 2000;
  model.map_seconds_per_record = 9.3e-5 * 2500;
  model.reduce_seconds_per_record = 9.3e-5 * 2500;
  model.shuffle_seconds_per_byte = 4e-9 * 2500;
  model.job_overhead_seconds = 75.0;

  WallTimer wall;
  for (double eps : {0.0, 1.0, 2.0}) {
    MapReduceEnv env(model);
    MrDensestOptions opt;
    opt.epsilon = eps;
    auto r = RunMrDensestUndirected(env, im, opt);
    if (!r.ok()) {
      std::printf("MR driver failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("\neps=%.0f (%llu passes, best rho=%.2f)\n", eps,
                static_cast<unsigned long long>(r->result.passes),
                r->result.density);
    std::printf("  %-6s %14s\n", "pass", "sim minutes");
    for (size_t i = 0; i < r->pass_seconds.size(); ++i) {
      double minutes = r->pass_seconds[i] / 60.0;
      std::printf("  %-6zu %14.1f\n", i + 1, minutes);
      if (csv.ok()) {
        csv->AddRow({CsvWriter::Num(eps), std::to_string(i + 1),
                     CsvWriter::Num(minutes),
                     CsvWriter::Num(r->result.trace[i].density)});
      }
    }
  }
  std::printf("\n[real local execution time: %.1fs]\n", wall.ElapsedSeconds());
  std::printf("Paper's observation to reproduce: per-pass time decays to a "
              "job-overhead floor as the graph shrinks; the whole im run "
              "stays under ~260 minutes.\n");
  return 0;
}
