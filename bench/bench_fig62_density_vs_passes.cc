// Reproduces Figure 6.2: density (relative to the run's maximum) as a
// function of the pass index, for eps in {0, 1, 2}, on flickr/im stand-ins.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/algorithm1.h"
#include "gen/datasets.h"
#include "graph/undirected_graph.h"

namespace {

using namespace densest;

void Trace(const char* name, const UndirectedGraph& g, CsvWriter* csv) {
  std::printf("\n%s: rho (relative to max) per pass\n", name);
  for (double eps : {0.0, 1.0, 2.0}) {
    Algorithm1Options opt;
    opt.epsilon = eps;
    auto r = RunAlgorithm1(g, opt);
    if (!r.ok()) continue;
    double max_rho = 0;
    for (const PassSnapshot& s : r->trace) max_rho = std::max(max_rho, s.density);
    std::printf("  eps=%.0f:", eps);
    for (const PassSnapshot& s : r->trace) {
      std::printf(" %.3f", s.density / max_rho);
      if (csv != nullptr) {
        csv->AddRow({name, CsvWriter::Num(eps), std::to_string(s.pass),
                     CsvWriter::Num(s.density),
                     CsvWriter::Num(s.density / max_rho)});
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace densest;
  bench::Banner("Figure 6.2",
                "Density as a function of the number of passes");
  auto csv = bench::OpenCsv("fig62_density_vs_passes",
                            {"dataset", "eps", "pass", "rho", "rho_rel_max"});
  CsvWriter* csv_ptr = csv.ok() ? &csv.value() : nullptr;
  {
    UndirectedGraph flickr = UndirectedGraph::FromEdgeList(MakeFlickrSim(1));
    Trace("FLICKR-sim", flickr, csv_ptr);
  }
  {
    UndirectedGraph im = UndirectedGraph::FromEdgeList(MakeImSim(2));
    Trace("IM-sim", im, csv_ptr);
  }
  std::printf("\nPaper's observation to reproduce: the density trajectory "
              "is non-monotone (rises toward the dense core, then falls as "
              "it is destroyed).\n");
  return 0;
}
