// Ablation: why the paper does not run exact solvers at scale — runtime
// growth of the exact flow solver vs the streaming algorithm on growing
// Chung-Lu graphs (the paper makes this point for LP/flow in §6.1).

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/algorithm1.h"
#include "flow/goldberg.h"
#include "gen/chung_lu.h"
#include "graph/undirected_graph.h"

int main() {
  using namespace densest;
  bench::Banner("Ablation: exact solver cost",
                "Exact flow vs Algorithm 1 runtime as the graph grows");
  auto csv = bench::OpenCsv("ablation_exact_cost",
                            {"nodes", "edges", "exact_seconds", "exact_rho",
                             "alg1_seconds", "alg1_rho"});

  std::printf("%8s %10s | %12s %10s | %12s %10s\n", "|V|", "|E|",
              "exact sec", "rho*", "alg1 sec", "rho~");
  for (NodeId n : {2000u, 4000u, 8000u, 16000u, 32000u}) {
    ChungLuOptions cl;
    cl.num_nodes = n;
    cl.num_edges = n * 8;
    cl.exponent = 2.3;
    UndirectedGraph g = UndirectedGraph::FromEdgeList(ChungLu(cl, n));

    WallTimer t_exact;
    auto exact = ExactDensestSubgraph(g);
    if (!exact.ok()) return 1;
    double exact_sec = t_exact.ElapsedSeconds();

    Algorithm1Options opt;
    opt.epsilon = 0.5;
    opt.record_trace = false;
    WallTimer t_approx;
    auto approx = RunAlgorithm1(g, opt);
    if (!approx.ok()) return 1;
    double approx_sec = t_approx.ElapsedSeconds();

    std::printf("%8u %10llu | %12.3f %10.3f | %12.4f %10.3f\n", n,
                static_cast<unsigned long long>(g.num_edges()), exact_sec,
                exact->density, approx_sec, approx->density);
    if (csv.ok()) {
      csv->AddRow({std::to_string(n), std::to_string(g.num_edges()),
                   CsvWriter::Num(exact_sec), CsvWriter::Num(exact->density),
                   CsvWriter::Num(approx_sec),
                   CsvWriter::Num(approx->density)});
    }
  }
  std::printf("\nExpected shape: the exact solver's time grows much faster "
              "than the streaming algorithm's while the density gap stays "
              "small — the paper's motivation for (2+2eps) peeling.\n");
  return 0;
}
