// Reproduces Figure 6.4: density and number of passes as a function of c
// (powers of delta=2) on the livejournal stand-in, for eps in {0, 1}.

#include <cstdio>

#include "bench_common.h"
#include "core/algorithm3.h"
#include "gen/datasets.h"
#include "graph/directed_graph.h"

int main() {
  using namespace densest;
  bench::Banner("Figure 6.4",
                "livejournal-sim: density and passes vs c at delta=2");
  auto csv = bench::OpenCsv("fig64_directed_c_sweep",
                            {"eps", "c", "rho", "passes"});

  DirectedGraph g = DirectedGraph::FromEdgeList(MakeLiveJournalSim(3));

  for (double eps : {0.0, 1.0}) {
    CSearchOptions opt;
    opt.delta = 2.0;
    opt.epsilon = eps;
    opt.record_trace = false;
    auto r = RunCSearch(g, opt);
    if (!r.ok()) {
      std::printf("c-search failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("\neps=%.0f   %-14s %10s %8s\n", eps, "c", "rho", "passes");
    for (const DirectedDensestResult& run : r->sweep) {
      std::printf("        %-14.6g %10.3f %8llu\n", run.c, run.density,
                  static_cast<unsigned long long>(run.passes));
      if (csv.ok()) {
        csv->AddRow({CsvWriter::Num(eps), CsvWriter::Num(run.c),
                     CsvWriter::Num(run.density),
                     std::to_string(run.passes)});
      }
    }
    std::printf("        best: c=%.4g rho=%.3f\n", r->best.c,
                r->best.density);
    std::printf("        fused: %llu physical scans for %zu c values\n",
                static_cast<unsigned long long>(r->physical_scans),
                r->sweep.size());
  }
  std::printf("\nPaper's observation to reproduce: for livejournal the "
              "optimum occurs when |S| and |T| are not very skewed "
              "(best c near 1; paper found c=0.436).\n");
  return 0;
}
