// Self-checking harness for the fused MultiRunEngine (core/multi_run.h).
//
// Runs the Figure 6.4 directed c-sweep and a Figure 6.1-style epsilon
// sweep twice — once run-by-run (each configuration scans the stream for
// itself) and once fused (all configurations share every physical scan) —
// and verifies that
//   1. the sweeps are IDENTICAL (density, passes, survivor sets per
//      configuration, i.e. the CSVs the figures are drawn from), and
//   2. the fused c-sweep performs at least 3x fewer physical stream scans
//      (the ISSUE 2 acceptance bar; the epsilon sweep must clear 2x).
// Exits nonzero on any violation, so CI fails if fusion ever regresses to
// per-run scanning. Metrics land in bench_results/BENCH_multi_run.json.
//
// Usage: bench_multi_run [smoke]
//   (no args)  paper-config graphs: livejournal-sim + flickr-sim
//   smoke      small Erdős–Rényi graphs for CI

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/algorithm1.h"
#include "core/algorithm3.h"
#include "core/multi_run.h"
#include "gen/datasets.h"
#include "gen/erdos_renyi.h"
#include "graph/directed_graph.h"
#include "graph/undirected_graph.h"
#include "stream/memory_stream.h"
#include "stream/pass_stats.h"

namespace {

using namespace densest;

bool SameRun(const DirectedDensestResult& a, const DirectedDensestResult& b) {
  return a.c == b.c && a.density == b.density && a.passes == b.passes &&
         a.s_nodes == b.s_nodes && a.t_nodes == b.t_nodes;
}

bool SameRun(const UndirectedDensestResult& a,
             const UndirectedDensestResult& b) {
  return a.density == b.density && a.passes == b.passes &&
         a.io_passes == b.io_passes && a.nodes == b.nodes;
}

struct SectionOutcome {
  uint64_t seq_scans = 0;
  uint64_t fused_scans = 0;
  uint64_t fused_edges = 0;
  double seq_wall_s = 0;
  double fused_wall_s = 0;
  bool identical = false;

  double Reduction() const {
    return fused_scans == 0 ? 0.0
                            : static_cast<double>(seq_scans) /
                                  static_cast<double>(fused_scans);
  }
};

void Report(const char* section, const SectionOutcome& o, double floor,
            bool* ok, StatusOr<CsvWriter>& csv, bench::BenchJson& json) {
  std::printf("%-22s %6llu -> %4llu scans  (%5.2fx, floor %.0fx)   "
              "%6.2fs -> %5.2fs   results %s\n",
              section, static_cast<unsigned long long>(o.seq_scans),
              static_cast<unsigned long long>(o.fused_scans), o.Reduction(),
              floor, o.seq_wall_s, o.fused_wall_s,
              o.identical ? "identical" : "DIVERGED");
  if (!o.identical || o.Reduction() < floor) *ok = false;
  if (csv.ok()) {
    csv->AddRow({section, std::to_string(o.seq_scans),
                 std::to_string(o.fused_scans), CsvWriter::Num(o.Reduction()),
                 CsvWriter::Num(o.seq_wall_s), CsvWriter::Num(o.fused_wall_s)});
  }
  const std::string p = std::string(section) + ".";
  json.Add(p + "sequential_scans", static_cast<double>(o.seq_scans));
  json.Add(p + "fused_scans", static_cast<double>(o.fused_scans));
  json.Add(p + "scan_reduction", o.Reduction());
  json.Add(p + "sequential_wall_s", o.seq_wall_s);
  json.Add(p + "fused_wall_s", o.fused_wall_s);
  if (o.fused_wall_s > 0) {
    json.Add(p + "fused_edges_per_s",
             static_cast<double>(o.fused_edges) / o.fused_wall_s);
  }
}

/// Figure 6.4 config: the whole delta=2 c-grid at one eps, sequential vs
/// fused over the same directed graph.
SectionOutcome CSweep(const DirectedGraph& g, double eps) {
  CSearchOptions opt;
  opt.delta = 2.0;
  opt.epsilon = eps;
  opt.record_trace = false;

  SectionOutcome out;

  DirectedGraphStream seq_inner(g);
  PassStats seq_stats;
  CountingEdgeStream seq_stream(seq_inner, seq_stats);
  opt.fused = false;
  WallTimer seq_timer;
  auto seq = RunCSearch(seq_stream, opt);
  out.seq_wall_s = seq_timer.ElapsedSeconds();

  DirectedGraphStream fused_inner(g);
  PassStats fused_stats;
  CountingEdgeStream fused_stream(fused_inner, fused_stats);
  opt.fused = true;
  WallTimer fused_timer;
  auto fused = RunCSearch(fused_stream, opt);
  out.fused_wall_s = fused_timer.ElapsedSeconds();

  if (!seq.ok() || !fused.ok()) return out;  // identical stays false
  out.seq_scans = seq_stats.passes;
  out.fused_scans = fused_stats.passes;
  out.fused_edges = fused_stats.edges_scanned;

  out.identical = seq->sweep.size() == fused->sweep.size() &&
                  fused->physical_scans == fused_stats.passes &&
                  seq->physical_scans == seq_stats.passes;
  for (size_t i = 0; out.identical && i < seq->sweep.size(); ++i) {
    out.identical = SameRun(seq->sweep[i], fused->sweep[i]);
  }
  return out;
}

/// Figure 6.1 config: the eps grid for Algorithm 1, sequential vs fused.
SectionOutcome EpsilonSweep(const UndirectedGraph& g) {
  std::vector<double> epsilons;
  for (double eps = 0.0; eps <= 2.51; eps += 0.25) epsilons.push_back(eps);
  Algorithm1Options base;
  base.record_trace = false;

  SectionOutcome out;

  UndirectedGraphStream seq_inner(g);
  PassStats seq_stats;
  CountingEdgeStream seq_stream(seq_inner, seq_stats);
  std::vector<UndirectedDensestResult> seq;
  WallTimer seq_timer;
  for (double eps : epsilons) {
    Algorithm1Options opt = base;
    opt.epsilon = eps;
    auto r = RunAlgorithm1(seq_stream, opt);
    if (!r.ok()) return out;
    seq.push_back(std::move(*r));
  }
  out.seq_wall_s = seq_timer.ElapsedSeconds();

  UndirectedGraphStream fused_inner(g);
  PassStats fused_stats;
  CountingEdgeStream fused_stream(fused_inner, fused_stats);
  MultiRunEngine engine;
  WallTimer fused_timer;
  auto fused = RunAlgorithm1EpsilonSweep(fused_stream, base, epsilons, &engine);
  out.fused_wall_s = fused_timer.ElapsedSeconds();
  if (!fused.ok()) return out;

  out.seq_scans = seq_stats.passes;
  out.fused_scans = fused_stats.passes;
  out.fused_edges = fused_stats.edges_scanned;
  out.identical = fused->size() == seq.size() &&
                  engine.last_physical_passes() == fused_stats.passes;
  for (size_t i = 0; out.identical && i < seq.size(); ++i) {
    out.identical = SameRun(seq[i], (*fused)[i]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;

  bench::Banner("Multi-run fusion",
                "Physical stream scans: run-by-run sweeps vs one fused scan "
                "per pass (self-checking)");
  auto csv = bench::OpenCsv(
      "multi_run", {"section", "sequential_scans", "fused_scans",
                    "scan_reduction", "sequential_wall_s", "fused_wall_s"});
  bench::BenchJson json("multi_run");

  DirectedGraph dg =
      smoke ? DirectedGraph::FromEdgeList(ErdosRenyiDirectedGnm(3000, 60000, 7))
            : DirectedGraph::FromEdgeList(MakeLiveJournalSim(3));
  UndirectedGraph ug =
      smoke ? UndirectedGraph::FromEdgeList(ErdosRenyiGnm(3000, 60000, 9))
            : UndirectedGraph::FromEdgeList(MakeFlickrSim(1));
  std::printf("graphs: directed |V|=%u |E|=%llu, undirected |V|=%u "
              "|E|=%llu%s\n\n",
              dg.num_nodes(), static_cast<unsigned long long>(dg.num_edges()),
              ug.num_nodes(), static_cast<unsigned long long>(ug.num_edges()),
              smoke ? "  [smoke]" : "");

  bool ok = true;
  Report("fig64_c_sweep_eps0", CSweep(dg, 0.0), 3.0, &ok, csv, json);
  Report("fig64_c_sweep_eps1", CSweep(dg, 1.0), 3.0, &ok, csv, json);
  Report("fig61_eps_sweep", EpsilonSweep(ug), 2.0, &ok, csv, json);

  Status js = json.Write();
  if (!js.ok()) {
    std::fprintf(stderr, "warning: no JSON output: %s\n",
                 js.ToString().c_str());
  }
  std::printf("\n%s\n", ok ? "PASS: fused sweeps are identical and within "
                             "the scan-reduction floors"
                           : "FAIL: fused sweep diverged or scan reduction "
                             "below floor");
  return ok ? 0 : 1;
}
