// Ablation (§4.2): Algorithm 2's size-density trade-off on flickr-sim —
// how the best density of a >=k-node subgraph and the pass count (Lemma 11:
// O(log_{1+eps}(n/k))) vary with k.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/algorithm1.h"
#include "core/algorithm2.h"
#include "core/multi_run.h"
#include "gen/datasets.h"
#include "graph/undirected_graph.h"
#include "stream/memory_stream.h"

int main() {
  using namespace densest;
  bench::Banner("Ablation: size-constrained densest subgraph (Algorithm 2)",
                "rho_{>=k} and passes vs k on flickr-sim, eps=0.5");
  auto csv = bench::OpenCsv("ablation_atleastk",
                            {"k", "rho", "size", "passes"});

  UndirectedGraph g = UndirectedGraph::FromEdgeList(MakeFlickrSim(1));
  std::printf("graph: |V|=%u |E|=%llu\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  Algorithm1Options base;
  base.epsilon = 0.5;
  base.record_trace = false;
  auto unconstrained = RunAlgorithm1(g, base);
  if (!unconstrained.ok()) return 1;
  std::printf("unconstrained (Algorithm 1): rho=%.3f |S|=%zu\n\n",
              unconstrained->density, unconstrained->nodes.size());

  // All k values of the grid run fused through MultiRunEngine — one
  // physical scan per pass round feeds every still-active k.
  const NodeId kValues[] = {1u, 10u, 100u, 1000u, 10000u, 50000u, 100000u};
  std::vector<Algorithm2Options> grid;
  for (NodeId k : kValues) {
    Algorithm2Options opt;
    opt.min_size = k;
    opt.epsilon = 0.5;
    opt.record_trace = false;
    grid.push_back(opt);
  }
  UndirectedGraphStream stream(g);
  MultiRunEngine engine;
  auto sweep = engine.RunUndirectedRuns(stream, grid);
  if (!sweep.ok()) return 1;

  std::printf("%8s %12s %10s %8s\n", "k", "rho_{>=k}", "|S|", "passes");
  for (size_t i = 0; i < grid.size(); ++i) {
    const UndirectedDensestResult& r = (*sweep)[i];
    std::printf("%8u %12.3f %10zu %8llu\n", kValues[i], r.density,
                r.nodes.size(), static_cast<unsigned long long>(r.passes));
    if (csv.ok()) {
      csv->AddRow({std::to_string(kValues[i]), CsvWriter::Num(r.density),
                   std::to_string(r.nodes.size()),
                   std::to_string(r.passes)});
    }
  }
  std::printf("\nfused k grid: %llu physical scans (run-by-run would cost "
              "%llu)\n",
              static_cast<unsigned long long>(engine.last_physical_passes()),
              static_cast<unsigned long long>(engine.last_logical_passes()));
  std::printf("\nExpected shape: rho_{>=k} decreases as k grows past the "
              "natural dense-core size; the returned size hugs k; passes "
              "shrink as k approaches n (Lemma 11).\n");
  return 0;
}
