// The dynamic maintenance service under load: replays insert-only and
// sliding-window update streams into DynamicDensest, verifies the
// certified approximation band against exact recomputation checkpoints,
// and measures update throughput and query latency percentiles.
//
// Usage: bench_dynamic [smoke|snapshot]
//
//   smoke     CI gate: fails (exit 1) when the maintained density leaves
//             the certified band versus exact recomputation on the
//             insert-only or sliding-window workload, when the insert-only
//             final answer is inconsistent with batch RunAlgorithm1 on the
//             same edges, when in-memory replay throughput falls below a
//             conservative floor, or when the crash-snapshot gate (below)
//             fails. Emits bench_results/BENCH_dynamic.json either way.
//   snapshot  Just the crash-snapshot gate: snapshot-write overhead under
//             5% of apply time and a restore drill that must land on the
//             bit-identical final answer. No throughput floor, so it also
//             runs meaningfully under sanitizer builds.

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "bench_common.h"
#include "common/timer.h"
#include "core/algorithm1.h"
#include "dynamic/dynamic_densest.h"
#include "dynamic/replay.h"
#include "dynamic/snapshot.h"
#include "gen/erdos_renyi.h"
#include "stream/memory_stream.h"
#include "stream/update_stream.h"

namespace {

using namespace densest;

/// CI-safe throughput floor for the in-memory replay. Shared runners are
/// slow and noisy; the dev-container expectation (>1M/s, recorded in
/// ROADMAP.md) is what the printed number should show on real hardware.
constexpr double kMinUpdatesPerSec = 250e3;

struct Workload {
  const char* name;
  EdgeList edges;
  uint64_t window;  // 0 = insert-only
};

/// Replays one workload with exact checkpoints; false when the band gate
/// fails. Metrics land in `json` under `prefix`.
bool RunBandGate(const Workload& w, bench::BenchJson& json) {
  EdgeListStream base(w.edges);
  InsertReplayUpdateStream inserts(base);
  std::unique_ptr<SlidingWindowUpdateStream> windowed;
  UpdateStream* updates = &inserts;
  if (w.window > 0) {
    windowed = std::make_unique<SlidingWindowUpdateStream>(base, w.window);
    updates = windowed.get();
  }
  auto engine = DynamicDensest::Create(base.num_nodes());
  if (!engine.ok()) {
    std::printf("FAIL: %s\n", engine.status().ToString().c_str());
    return false;
  }
  ReplayOptions opt;
  opt.query_every = 512;
  opt.checkpoint_every = w.window > 0 ? 3000 : 1500;
  opt.checkpoint_mode = CheckpointMode::kExactFlow;
  auto report = ReplayUpdates(*updates, **engine, opt);
  if (!report.ok()) {
    std::printf("FAIL: %s\n", report.status().ToString().c_str());
    return false;
  }
  const std::string prefix = std::string(w.name) + "_";
  json.Add(prefix + "checkpoints",
           static_cast<double>(report->checkpoints.size()));
  json.Add(prefix + "max_observed_error", report->max_observed_error);
  json.Add(prefix + "band_ok", report->band_ok ? 1 : 0);
  std::printf(
      "%-14s %7llu updates, %zu exact checkpoints, max error %.3fx "
      "(certified band %.2fx), %llu recomputes, %llu window moves: %s\n",
      w.name, static_cast<unsigned long long>(report->updates),
      report->checkpoints.size(), report->max_observed_error,
      (*engine)->ApproxBand(),
      static_cast<unsigned long long>(report->engine_stats.recomputes),
      static_cast<unsigned long long>(report->engine_stats.window_moves),
      report->band_ok ? "IN BAND" : "BAND VIOLATED");
  bool ok = report->band_ok;

  if (w.window == 0) {
    // Insert-only equivalence: the final maintained answer and batch
    // Algorithm 1 on the same edges sandwich the same rho*.
    Algorithm1Options a1;
    a1.epsilon = 0.5;
    a1.record_trace = false;
    auto batch = RunAlgorithm1(base, a1);
    if (!batch.ok()) {
      std::printf("FAIL: %s\n", batch.status().ToString().c_str());
      return false;
    }
    const bool consistent =
        report->final_density <= (2 + 2 * a1.epsilon) * batch->density * (1 + 1e-9) &&
        batch->density <= report->final_upper_bound * (1 + 1e-9);
    json.Add("insert_only_matches_batch", consistent ? 1 : 0);
    std::printf(
        "insert-only vs batch alg1: dynamic rho=%.4f (upper %.4f), batch "
        "rho=%.4f: %s\n",
        report->final_density, report->final_upper_bound, batch->density,
        consistent ? "CONSISTENT" : "DIVERGED");
    if (!consistent) ok = false;
  }
  return ok;
}

/// Times the in-memory replay path (the >1M updates/sec figure); false on
/// a throughput regression below the CI floor.
bool RunThroughputGate(bench::BenchJson& json) {
  // Materialize a mixed insert/delete sequence once, then replay it from
  // memory: this isolates the engine's update cost from generation.
  EdgeList edges = ErdosRenyiGnm(65536, 1000000, 5150);
  EdgeListStream base(edges);
  SlidingWindowUpdateStream windowed(base, 500000);
  std::vector<EdgeUpdate> updates;
  updates.reserve(1500000);
  windowed.Reset();
  EdgeUpdate u;
  while (windowed.Next(&u)) updates.push_back(u);

  MemoryUpdateStream stream(updates, edges.num_nodes());
  // Best of two replays (the bench convention, cf. bench_pass_engine's
  // best-of-7): each runs a fresh engine over the identical sequence, so
  // the better run differs only by machine noise.
  StatusOr<ReplayReport> report = Status::Internal("never ran");
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto engine = DynamicDensest::Create(edges.num_nodes());
    if (!engine.ok()) {
      std::printf("FAIL: %s\n", engine.status().ToString().c_str());
      return false;
    }
    ReplayOptions opt;
    opt.query_every = 1024;
    auto attempt_report = ReplayUpdates(stream, **engine, opt);
    if (!attempt_report.ok()) {
      std::printf("FAIL: %s\n", attempt_report.status().ToString().c_str());
      return false;
    }
    if (!report.ok() ||
        attempt_report->updates_per_sec > report->updates_per_sec) {
      report = std::move(attempt_report);
    }
  }
  json.Add("updates", static_cast<double>(report->updates));
  json.Add("updates_per_sec", report->updates_per_sec);
  json.Add("query_p50_us", report->query_latency_us.Quantile(0.5));
  json.Add("query_p99_us", report->query_latency_us.Quantile(0.99));
  json.Add("queries", static_cast<double>(report->queries));
  json.Add("level_moves",
           static_cast<double>(report->engine_stats.level_moves));
  json.Add("recomputes", static_cast<double>(report->engine_stats.recomputes));
  json.Add("final_density", report->final_density);
  std::printf(
      "in-memory replay: %llu updates (%llu ins / %llu del) at %.2fM "
      "updates/s\n",
      static_cast<unsigned long long>(report->updates),
      static_cast<unsigned long long>(report->engine_stats.inserts),
      static_cast<unsigned long long>(report->engine_stats.deletes),
      report->updates_per_sec / 1e6);
  std::printf(
      "queries: %llu  p50=%.2fus p99=%.2fus   final rho=%.3f (certified < "
      "%.3f)\n",
      static_cast<unsigned long long>(report->queries),
      report->query_latency_us.Quantile(0.5),
      report->query_latency_us.Quantile(0.99), report->final_density,
      report->final_upper_bound);
  std::printf(
      "maintenance: %llu level moves (%.2f/update), %llu recomputes, %llu "
      "structures rebuilt\n",
      static_cast<unsigned long long>(report->engine_stats.level_moves),
      static_cast<double>(report->engine_stats.level_moves) /
          static_cast<double>(report->updates),
      static_cast<unsigned long long>(report->engine_stats.recomputes),
      static_cast<unsigned long long>(
          report->engine_stats.structures_rebuilt));
  if (report->updates_per_sec < kMinUpdatesPerSec) {
    std::printf("FAIL: replay throughput below the %.0fk/s floor\n",
                kMinUpdatesPerSec / 1e3);
    return false;
  }
  return true;
}

/// CI ceiling for crash-safety overhead: wall time spent writing
/// snapshots, as a fraction of pure apply time at the default cadence.
constexpr double kMaxSnapshotOverheadPct = 5.0;

/// Replays a windowed workload with periodic crash snapshots, then proves
/// the last snapshot restores: a fresh engine resumed from it and fed the
/// remaining updates must land on the bit-identical final answer. False
/// when a snapshot fails, the restore diverges, or the snapshot cadence
/// costs more than kMaxSnapshotOverheadPct of apply time.
bool RunSnapshotGate(bench::BenchJson& json) {
  // Sized like a production cadence: ~0.7 MB of engine state snapshotted
  // every 200k updates over a 560k-update replay. The gate is IO-bound —
  // what it really bounds is state_bytes * cadence against apply rate.
  EdgeList edges = ErdosRenyiGnm(20000, 300000, 77);
  EdgeListStream base(edges);
  SlidingWindowUpdateStream windowed(base, 40000);
  std::vector<EdgeUpdate> updates;
  windowed.Reset();
  EdgeUpdate u;
  while (windowed.Next(&u)) updates.push_back(u);

  const std::string path =
      (std::filesystem::temp_directory_path() / "bench_dynamic_snapshot.bin")
          .string();
  MemoryUpdateStream stream(updates, edges.num_nodes());
  auto engine = DynamicDensest::Create(edges.num_nodes());
  if (!engine.ok()) {
    std::printf("FAIL: %s\n", engine.status().ToString().c_str());
    return false;
  }
  ReplayOptions opt;
  opt.query_every = 0;
  opt.snapshot_every = 200000;
  opt.snapshot_path = path;
  auto report = ReplayUpdates(stream, **engine, opt);
  if (!report.ok()) {
    std::printf("FAIL: %s\n", report.status().ToString().c_str());
    return false;
  }
  const double apply_seconds =
      static_cast<double>(report->updates) / report->updates_per_sec;
  const double overhead_pct =
      100.0 * report->snapshot_seconds / apply_seconds;
  json.Add("snapshots_written", static_cast<double>(report->snapshots_written));
  json.Add("snapshot_overhead_pct", overhead_pct);
  bool ok = true;
  std::printf(
      "snapshots: %llu written over %llu updates, %.1fms total (%.2f%% of "
      "apply time, gate <%.0f%%)%s\n",
      static_cast<unsigned long long>(report->snapshots_written),
      static_cast<unsigned long long>(report->updates),
      report->snapshot_seconds * 1e3, overhead_pct, kMaxSnapshotOverheadPct,
      report->snapshots_failed > 0 ? "  [WRITE FAILURES]" : "");
  if (report->snapshots_failed > 0 || report->snapshots_written == 0) {
    std::printf("FAIL: %s\n", report->snapshots_failed > 0
                                  ? report->last_snapshot_error.c_str()
                                  : "no snapshot was written");
    ok = false;
  }
  if (overhead_pct >= kMaxSnapshotOverheadPct) {
    std::printf("FAIL: snapshot overhead above the gate\n");
    ok = false;
  }

  // Crash-recovery drill: resume from the last snapshot on disk and apply
  // the tail of the same sequence; the served answer must match the
  // uninterrupted engine's exactly, not approximately.
  bool restore_ok = false;
  auto restored = ReadSnapshot(path, DynamicDensestOptions{});
  if (!restored.ok()) {
    std::printf("FAIL: restore: %s\n", restored.status().ToString().c_str());
  } else {
    for (uint64_t i = restored->cursor; i < updates.size(); ++i) {
      restored->engine->Apply(updates[i]);
    }
    const DynamicDensest::Answer a = (*engine)->Query();
    const DynamicDensest::Answer b = restored->engine->Query();
    restore_ok = a.density == b.density && a.upper_bound == b.upper_bound &&
                 (*engine)->num_edges() == restored->engine->num_edges();
    std::printf(
        "restore drill: resumed at update %llu of %zu, final rho %.4f vs "
        "%.4f: %s\n",
        static_cast<unsigned long long>(restored->cursor), updates.size(),
        b.density, a.density, restore_ok ? "IDENTICAL" : "DIVERGED");
  }
  json.Add("snapshot_restore_ok", restore_ok ? 1 : 0);
  std::remove(path.c_str());
  return ok && restore_ok;
}

int RunSnapshotOnly() {
  bench::Banner("Dynamic maintenance [snapshot]",
                "crash-snapshot overhead + bit-identical restore drill");
  bench::BenchJson json("dynamic_snapshot");
  const bool ok = RunSnapshotGate(json);
  if (Status js = json.Write(); !js.ok()) {
    std::printf("warning: %s\n", js.ToString().c_str());
  }
  std::printf("%s\n", ok ? "SNAPSHOT GATE OK" : "SNAPSHOT GATE FAILED");
  return ok ? 0 : 1;
}

int RunSmoke() {
  bench::Banner("Dynamic maintenance [smoke]",
                "band + insert-only-equivalence + throughput + snapshot gate");
  bench::BenchJson json("dynamic");
  bool ok = true;
  const Workload insert_only{"insert_only", ErdosRenyiGnm(800, 6000, 41), 0};
  const Workload sliding{"sliding_window", ErdosRenyiGnm(600, 12000, 43),
                         3000};
  if (!RunBandGate(insert_only, json)) ok = false;
  if (!RunBandGate(sliding, json)) ok = false;
  if (!RunThroughputGate(json)) ok = false;
  if (!RunSnapshotGate(json)) ok = false;
  json.Add("band_ok", ok ? 1 : 0);
  // Written on success and failure alike: a red CI leg still uploads the
  // partial metrics, which is when they are needed most.
  if (Status js = json.Write(); !js.ok()) {
    std::printf("warning: %s\n", js.ToString().c_str());
  }
  std::printf("%s\n", ok ? "SMOKE OK" : "SMOKE FAILED");
  return ok ? 0 : 1;
}

int RunFigure() {
  bench::Banner("Dynamic maintenance",
                "update throughput and serving latency across workloads");
  auto csv = bench::OpenCsv(
      "dynamic", {"workload", "eps", "updates", "updates_per_sec",
                  "query_p50_us", "query_p99_us", "recomputes", "rho"});
  EdgeList edges = ErdosRenyiGnm(65536, 1000000, 5150);
  for (const uint64_t window : {uint64_t{0}, uint64_t{500000}}) {
    for (const double eps : {0.3, 0.5, 1.0}) {
      EdgeListStream base(edges);
      InsertReplayUpdateStream inserts(base);
      std::unique_ptr<SlidingWindowUpdateStream> windowed;
      UpdateStream* source = &inserts;
      if (window > 0) {
        windowed = std::make_unique<SlidingWindowUpdateStream>(base, window);
        source = windowed.get();
      }
      std::vector<EdgeUpdate> updates;
      source->Reset();
      EdgeUpdate u;
      while (source->Next(&u)) updates.push_back(u);
      MemoryUpdateStream stream(updates, edges.num_nodes());

      DynamicDensestOptions opt;
      opt.epsilon = eps;
      auto engine = DynamicDensest::Create(edges.num_nodes(), opt);
      if (!engine.ok()) {
        std::printf("engine: %s\n", engine.status().ToString().c_str());
        return 1;
      }
      ReplayOptions ropt;
      ropt.query_every = 1024;
      auto report = ReplayUpdates(stream, **engine, ropt);
      if (!report.ok()) {
        std::printf("replay: %s\n", report.status().ToString().c_str());
        return 1;
      }
      const char* name = window > 0 ? "sliding" : "insert";
      std::printf(
          "%-8s eps=%.1f  %8llu updates  %6.2fM/s  q p50=%.2fus p99=%.2fus  "
          "%llu recomputes  rho=%.3f\n",
          name, eps, static_cast<unsigned long long>(report->updates),
          report->updates_per_sec / 1e6,
          report->query_latency_us.Quantile(0.5),
          report->query_latency_us.Quantile(0.99),
          static_cast<unsigned long long>(report->engine_stats.recomputes),
          report->final_density);
      if (csv.ok()) {
        csv->AddRow({name, CsvWriter::Num(eps),
                     std::to_string(report->updates),
                     CsvWriter::Num(report->updates_per_sec),
                     CsvWriter::Num(report->query_latency_us.Quantile(0.5)),
                     CsvWriter::Num(report->query_latency_us.Quantile(0.99)),
                     std::to_string(report->engine_stats.recomputes),
                     CsvWriter::Num(report->final_density)});
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "smoke") == 0) return RunSmoke();
  if (argc > 1 && std::strcmp(argv[1], "snapshot") == 0) {
    return RunSnapshotOnly();
  }
  return RunFigure();
}
