// Ablation (§4.3): Algorithm 3's removal-side policies. The paper argues
// the size-ratio rule is simpler and faster than the naive max-degree rule
// because it needs only one degree array per pass; this bench quantifies
// the quality and time difference on the livejournal stand-in.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/algorithm3.h"
#include "core/multi_run.h"
#include "gen/datasets.h"
#include "graph/directed_graph.h"
#include "stream/memory_stream.h"

int main() {
  using namespace densest;
  bench::Banner("Ablation: directed removal rule",
                "size-ratio rule vs naive max-degree rule (livejournal-sim)");
  auto csv = bench::OpenCsv("ablation_directed_rule",
                            {"rule", "c", "rho", "passes", "seconds"});

  DirectedGraph g = DirectedGraph::FromEdgeList(MakeLiveJournalSim(3));
  std::printf("graph: |V|=%u |E|=%llu\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("%-12s %-10s %10s %8s %10s\n", "rule", "c", "rho", "passes",
              "seconds");

  // One fused sweep per rule (all three c values share physical scans
  // through MultiRunEngine); keeping the rules in separate sweeps preserves
  // the per-rule wall-clock comparison this ablation is about.
  uint64_t fused_scans = 0;
  uint64_t logical_scans = 0;
  MultiRunEngine engine;
  for (auto rule : {DirectedRemovalRule::kSizeRatio,
                    DirectedRemovalRule::kMaxDegree}) {
    const double cs[] = {0.25, 1.0, 4.0};
    std::vector<Algorithm3Options> grid;
    for (double c : cs) {
      Algorithm3Options opt;
      opt.c = c;
      opt.epsilon = 1.0;
      opt.rule = rule;
      opt.record_trace = false;
      grid.push_back(opt);
    }
    DirectedGraphStream stream(g);
    WallTimer t;
    auto sweep = engine.RunDirectedRuns(stream, grid);
    if (!sweep.ok()) return 1;
    const double sweep_s = t.ElapsedSeconds();
    fused_scans += engine.last_physical_passes();
    logical_scans += engine.last_logical_passes();
    const char* name =
        rule == DirectedRemovalRule::kSizeRatio ? "size-ratio" : "max-degree";
    // Every row of a rule carries that rule's whole fused sweep time: the
    // three c values share their scans, so the total is the cost of the
    // sweep, not of one run — the per-rule comparison stays meaningful.
    for (size_t i = 0; i < grid.size(); ++i) {
      const DirectedDensestResult& r = (*sweep)[i];
      std::printf("%-12s %-10.3g %10.3f %8llu %10.3f\n", name, cs[i],
                  r.density, static_cast<unsigned long long>(r.passes),
                  sweep_s);
      if (csv.ok()) {
        csv->AddRow({name, CsvWriter::Num(cs[i]), CsvWriter::Num(r.density),
                     std::to_string(r.passes), CsvWriter::Num(sweep_s)});
      }
    }
  }
  std::printf("\nfused c grids: %llu physical scans total (run-by-run would "
              "cost %llu); seconds are per fused 3-c sweep.\n",
              static_cast<unsigned long long>(fused_scans),
              static_cast<unsigned long long>(logical_scans));
  std::printf("Expected shape: comparable density; the size-ratio rule "
              "is the faster of the two (single degree scan per pass), "
              "matching the paper's 'significant speedup in practice'.\n");
  return 0;
}
