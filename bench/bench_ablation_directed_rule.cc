// Ablation (§4.3): Algorithm 3's removal-side policies. The paper argues
// the size-ratio rule is simpler and faster than the naive max-degree rule
// because it needs only one degree array per pass; this bench quantifies
// the quality and time difference on the livejournal stand-in.

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/algorithm3.h"
#include "gen/datasets.h"
#include "graph/directed_graph.h"

int main() {
  using namespace densest;
  bench::Banner("Ablation: directed removal rule",
                "size-ratio rule vs naive max-degree rule (livejournal-sim)");
  auto csv = bench::OpenCsv("ablation_directed_rule",
                            {"rule", "c", "rho", "passes", "seconds"});

  DirectedGraph g = DirectedGraph::FromEdgeList(MakeLiveJournalSim(3));
  std::printf("graph: |V|=%u |E|=%llu\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("%-12s %-10s %10s %8s %10s\n", "rule", "c", "rho", "passes",
              "seconds");

  for (double c : {0.25, 1.0, 4.0}) {
    for (auto rule : {DirectedRemovalRule::kSizeRatio,
                      DirectedRemovalRule::kMaxDegree}) {
      Algorithm3Options opt;
      opt.c = c;
      opt.epsilon = 1.0;
      opt.rule = rule;
      opt.record_trace = false;
      WallTimer t;
      auto r = RunAlgorithm3(g, opt);
      if (!r.ok()) return 1;
      const char* name =
          rule == DirectedRemovalRule::kSizeRatio ? "size-ratio" : "max-degree";
      std::printf("%-12s %-10.3g %10.3f %8llu %10.3f\n", name, c,
                  r->density, static_cast<unsigned long long>(r->passes),
                  t.ElapsedSeconds());
      if (csv.ok()) {
        csv->AddRow({name, CsvWriter::Num(c), CsvWriter::Num(r->density),
                     std::to_string(r->passes),
                     CsvWriter::Num(t.ElapsedSeconds())});
      }
    }
  }
  std::printf("\nExpected shape: comparable density; the size-ratio rule "
              "is the faster of the two (single degree scan per pass), "
              "matching the paper's 'significant speedup in practice'.\n");
  return 0;
}
