// Ablation (§6.3): once the graph has shrunk, finish in main memory.
// Compares edges scanned from the (simulated) external stream and local
// wall-clock with compaction off vs on, at several thresholds.

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/algorithm1.h"
#include "gen/datasets.h"
#include "graph/undirected_graph.h"
#include "stream/memory_stream.h"
#include "stream/pass_stats.h"

int main() {
  using namespace densest;
  bench::Banner("Ablation: in-memory compaction (paper §6.3)",
                "Stop re-scanning the stream once the graph is small");
  auto csv = bench::OpenCsv(
      "ablation_compaction",
      {"threshold_edges", "eps", "passes", "io_passes", "edges_scanned",
       "rho", "seconds"});

  EdgeList el = MakeFlickrSim(1);
  UndirectedGraph g = UndirectedGraph::FromEdgeList(el);
  EdgeList csr_edges = g.ToEdgeList();
  csr_edges.set_num_nodes(g.num_nodes());
  std::printf("graph: |V|=%u |E|=%llu\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  std::printf("%16s %5s %8s %10s %16s %10s %9s\n", "compact_below",
              "eps", "passes", "io passes", "edges scanned", "rho", "sec");
  for (double eps : {0.5, 1.0}) {
    for (EdgeId threshold :
         {EdgeId{0}, g.num_edges() / 10, g.num_edges() / 2, g.num_edges()}) {
      EdgeListStream inner(csr_edges);
      PassStats stats;
      CountingEdgeStream stream(inner, stats);
      Algorithm1Options opt;
      opt.epsilon = eps;
      opt.record_trace = false;
      opt.compact_below_edges = threshold;
      WallTimer t;
      auto r = RunAlgorithm1(stream, opt);
      if (!r.ok()) return 1;
      std::printf("%16llu %5.1f %8llu %10llu %16llu %10.3f %9.4f\n",
                  static_cast<unsigned long long>(threshold), eps,
                  static_cast<unsigned long long>(r->passes),
                  static_cast<unsigned long long>(r->io_passes),
                  static_cast<unsigned long long>(stats.edges_scanned),
                  r->density, t.ElapsedSeconds());
      if (csv.ok()) {
        csv->AddRow({std::to_string(threshold), CsvWriter::Num(eps),
                     std::to_string(r->passes),
                     std::to_string(r->io_passes),
                     std::to_string(stats.edges_scanned),
                     CsvWriter::Num(r->density),
                     CsvWriter::Num(t.ElapsedSeconds())});
      }
    }
  }
  std::printf("\nExpected shape: identical rho at every threshold; stream "
              "scans and total edges read drop sharply once compaction is "
              "allowed (the graph shrinks fast, Fig 6.3).\n");
  return 0;
}
