// Community mining (paper application #1): iteratively extract
// node-disjoint dense communities from a social-network-like graph and
// report their quality — the §6 enumeration remark made concrete.

#include <cstdio>

#include "densest.h"

int main() {
  using namespace densest;

  // A social-style graph: heavy-tailed Chung-Lu background plus three
  // planted communities of different densities.
  ChungLuOptions cl;
  cl.num_nodes = 20000;
  cl.num_edges = 90000;
  cl.exponent = 2.3;
  EdgeList edges = ChungLu(cl, 2026);
  PlantedGraph planted = PlantDenseBlocks(
      cl.num_nodes, 0, {{60, 0.9}, {45, 0.8}, {35, 0.7}}, 7);
  edges.Append(planted.edges);

  GraphBuilder builder;
  builder.ReserveNodes(edges.num_nodes());
  for (const Edge& e : edges.edges()) builder.Add(e.u, e.v);
  UndirectedGraph graph = std::move(builder.BuildUndirected()).value();
  std::printf("graph: %s\n", FormatStats(ComputeStats(graph)).c_str());
  std::printf("planted communities: 60@0.9 (rho~26.6), 45@0.8 (rho~17.6), "
              "35@0.7 (rho~11.9)\n\n");

  EnumerateOptions options;
  options.max_subgraphs = 5;
  options.epsilon = 0.1;       // small eps separates nested communities
  options.min_density = 4.0;   // stop once we reach background-level sets
  StatusOr<std::vector<UndirectedDensestResult>> communities =
      EnumerateDenseSubgraphs(graph, options);
  if (!communities.ok()) {
    std::fprintf(stderr, "enumeration failed: %s\n",
                 communities.status().ToString().c_str());
    return 1;
  }

  std::printf("%-6s %8s %10s %8s\n", "rank", "size", "density", "passes");
  for (size_t i = 0; i < communities->size(); ++i) {
    const auto& c = (*communities)[i];
    std::printf("%-6zu %8zu %10.3f %8llu\n", i + 1, c.nodes.size(),
                c.density, static_cast<unsigned long long>(c.passes));
  }

  // How well do the mined communities match the planted ground truth?
  std::printf("\noverlap with planted blocks (fraction of block recovered "
              "by its best-matching community):\n");
  for (size_t b = 0; b < planted.blocks.size(); ++b) {
    NodeSet block =
        NodeSet::FromVector(graph.num_nodes(), planted.blocks[b]);
    double best_overlap = 0;
    for (const auto& c : *communities) {
      size_t hits = 0;
      for (NodeId u : c.nodes) hits += block.Contains(u);
      best_overlap = std::max(
          best_overlap,
          static_cast<double>(hits) / static_cast<double>(block.size()));
    }
    std::printf("  block %zu (%u nodes): %.0f%%\n", b + 1, block.size(),
                100.0 * best_overlap);
  }
  return 0;
}
