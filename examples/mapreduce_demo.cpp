// MapReduce walkthrough (§5.2): run the densest-subgraph computation as a
// sequence of MapReduce jobs on a simulated cluster — out-of-core. The
// input is written to a binary edge file and the jobs scan it as a stream;
// each job's shuffle spills to temp files under a byte budget, so shuffle
// memory is bounded by the budget instead of growing with |E| (the removal
// job's shrinking survivor set is the only edge data kept between passes).
// The answer is verified bit for bit against the streaming implementation.

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "densest.h"

int main() {
  using namespace densest;

  // Workload: a messenger-style contact graph with a dense community.
  ChungLuOptions cl;
  cl.num_nodes = 30000;
  cl.num_edges = 150000;
  cl.exponent = 2.5;
  EdgeList edges = ChungLu(cl, 161);
  PlantedGraph planted = PlantDenseBlocks(cl.num_nodes, 0, {{50, 0.8}}, 3);
  edges.Append(planted.edges);
  GraphBuilder builder;
  builder.ReserveNodes(edges.num_nodes());
  for (const Edge& e : edges.edges()) builder.Add(e.u, e.v);
  EdgeList cleaned = std::move(builder.BuildEdgeList(true)).value();
  std::printf("graph: |V|=%u |E|=%llu\n", cleaned.num_nodes(),
              static_cast<unsigned long long>(cleaned.num_edges()));

  // Stage it as a binary edge file: the honest out-of-core configuration.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("mapreduce_demo_" + std::to_string(::getpid()) + ".bin"))
          .string();
  if (!WriteBinaryEdgeFile(path, cleaned, /*weighted=*/false).ok()) {
    std::remove(path.c_str());  // a partial write may have left a stub
    return 1;
  }
  auto stream = BinaryFileEdgeStream::Open(path);
  if (!stream.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 stream.status().ToString().c_str());
    std::remove(path.c_str());
    return 1;
  }
  std::printf("staged to %s (%llu bytes on disk)\n\n", path.c_str(),
              static_cast<unsigned long long>(
                  std::filesystem::file_size(path)));

  // Model a modest Hadoop cluster (the paper used 2000+2000 workers).
  CostModel model;
  model.num_mappers = 200;
  model.num_reducers = 200;
  model.job_overhead_seconds = 30.0;
  MapReduceEnv env(model);

  MrDensestOptions options;
  options.epsilon = 1.0;
  // Cap each job's resident shuffle at 256 KiB — far below the ~2.4 MB of
  // degree-job records — so the first passes must spill and merge-read.
  options.spill_budget_bytes = 256 << 10;
  StatusOr<MrDensestResult> mr =
      RunMrDensestUndirected(env, **stream, options);
  if (!mr.ok()) {
    std::fprintf(stderr, "MR run failed: %s\n",
                 mr.status().ToString().c_str());
    std::remove(path.c_str());
    return 1;
  }

  std::printf("per-pass cluster cost (each pass = density job + degree job "
              "+ 2 removal jobs):\n");
  std::printf("%6s %10s %12s %14s %16s %12s\n", "pass", "|S|", "|E(S)|",
              "rho(S)", "sim cluster sec", "spill KiB");
  for (size_t i = 0; i < mr->result.trace.size(); ++i) {
    const PassSnapshot& s = mr->result.trace[i];
    std::printf("%6zu %10u %12llu %14.3f %16.1f %12llu\n", i + 1, s.nodes,
                static_cast<unsigned long long>(s.edges), s.density,
                mr->pass_seconds[i],
                static_cast<unsigned long long>(
                    mr->pass_stats[i].spill_bytes_written >> 10));
  }
  std::printf("\nMR result: %s\n", Summarize(mr->result).c_str());
  std::printf("input stream scans: %llu (first pass only; later passes run "
              "over the in-memory survivors)\n",
              static_cast<unsigned long long>(mr->input_scans));
  std::printf("cluster totals: %s\n", mr->totals.ToString().c_str());

  // Cross-check against the streaming implementation on the same file.
  Algorithm1Options stream_options;
  stream_options.epsilon = options.epsilon;
  auto streaming = RunAlgorithm1(**stream, stream_options);
  std::remove(path.c_str());
  if (!streaming.ok()) return 1;
  bool identical = streaming->nodes == mr->result.nodes &&
                   streaming->passes == mr->result.passes;
  std::printf("\nstreaming cross-check: %s (rho=%.4f, %llu passes)\n",
              identical ? "IDENTICAL" : "MISMATCH", streaming->density,
              static_cast<unsigned long long>(streaming->passes));
  return identical ? 0 : 1;
}
