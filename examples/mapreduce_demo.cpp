// MapReduce walkthrough (§5.2): run the densest-subgraph computation as a
// sequence of MapReduce jobs on a simulated cluster, print the per-pass
// job structure and cluster cost, and verify the answer matches the
// streaming implementation bit for bit.

#include <cstdio>

#include "densest.h"

int main() {
  using namespace densest;

  // Workload: a messenger-style contact graph with a dense community.
  ChungLuOptions cl;
  cl.num_nodes = 30000;
  cl.num_edges = 150000;
  cl.exponent = 2.5;
  EdgeList edges = ChungLu(cl, 161);
  PlantedGraph planted = PlantDenseBlocks(cl.num_nodes, 0, {{50, 0.8}}, 3);
  edges.Append(planted.edges);
  GraphBuilder builder;
  builder.ReserveNodes(edges.num_nodes());
  for (const Edge& e : edges.edges()) builder.Add(e.u, e.v);
  EdgeList cleaned = std::move(builder.BuildEdgeList(true)).value();
  std::printf("graph: |V|=%u |E|=%llu\n\n", cleaned.num_nodes(),
              static_cast<unsigned long long>(cleaned.num_edges()));

  // Model a modest Hadoop cluster (the paper used 2000+2000 workers).
  CostModel model;
  model.num_mappers = 200;
  model.num_reducers = 200;
  model.job_overhead_seconds = 30.0;
  MapReduceEnv env(model);

  MrDensestOptions options;
  options.epsilon = 1.0;
  StatusOr<MrDensestResult> mr = RunMrDensestUndirected(env, cleaned, options);
  if (!mr.ok()) {
    std::fprintf(stderr, "MR run failed: %s\n",
                 mr.status().ToString().c_str());
    return 1;
  }

  std::printf("per-pass cluster cost (each pass = density job + degree job "
              "+ 2 removal jobs):\n");
  std::printf("%6s %10s %12s %14s %16s\n", "pass", "|S|", "|E(S)|", "rho(S)",
              "sim cluster sec");
  for (size_t i = 0; i < mr->result.trace.size(); ++i) {
    const PassSnapshot& s = mr->result.trace[i];
    std::printf("%6zu %10u %12llu %14.3f %16.1f\n", i + 1, s.nodes,
                static_cast<unsigned long long>(s.edges), s.density,
                mr->pass_seconds[i]);
  }
  std::printf("\nMR result: %s\n", Summarize(mr->result).c_str());
  std::printf("cluster totals: %s\n", mr->totals.ToString().c_str());

  // Cross-check against the streaming implementation.
  UndirectedGraph graph = UndirectedGraph::FromEdgeList(cleaned);
  Algorithm1Options stream_options;
  stream_options.epsilon = options.epsilon;
  auto streaming = RunAlgorithm1(graph, stream_options);
  if (!streaming.ok()) return 1;
  bool identical = streaming->nodes == mr->result.nodes &&
                   streaming->passes == mr->result.passes;
  std::printf("\nstreaming cross-check: %s (rho=%.4f, %llu passes)\n",
              identical ? "IDENTICAL" : "MISMATCH", streaming->density,
              static_cast<unsigned long long>(streaming->passes));
  return identical ? 0 : 1;
}
