// Semi-streaming from disk with Count-Sketch degree counters (§5.1): the
// configuration for graphs whose edge set does not fit in RAM. The edges
// live in a binary file on disk; between passes the algorithm keeps only
// the alive bitmap plus t*b sketch counters.

#include <cstdio>
#include <string>

#include "densest.h"

int main() {
  using namespace densest;

  // Stage a graph to disk (in production this file is your dataset).
  ChungLuOptions cl;
  cl.num_nodes = 50000;
  cl.num_edges = 400000;
  cl.exponent = 2.2;
  EdgeList edges = ChungLu(cl, 404);
  PlantedGraph planted = PlantDenseBlocks(cl.num_nodes, 0, {{70, 0.85}}, 11);
  edges.Append(planted.edges);
  GraphBuilder builder;
  builder.ReserveNodes(edges.num_nodes());
  for (const Edge& e : edges.edges()) builder.Add(e.u, e.v);
  EdgeList cleaned = std::move(builder.BuildEdgeList(true)).value();

  const std::string path = "/tmp/densest_stream_demo.bin";
  if (Status s = WriteBinaryEdgeFile(path, cleaned, false); !s.ok()) {
    std::fprintf(stderr, "stage failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("staged %llu edges over %u nodes to %s\n",
              static_cast<unsigned long long>(cleaned.num_edges()),
              cleaned.num_nodes(), path.c_str());

  // Open the disk-backed stream and wrap it with pass accounting.
  auto file_stream = BinaryFileEdgeStream::Open(path);
  if (!file_stream.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 file_stream.status().ToString().c_str());
    return 1;
  }
  PassStats io_stats;
  CountingEdgeStream stream(**file_stream, io_stats);

  Algorithm1Options options;
  options.epsilon = 0.5;

  // Run 1: exact O(n)-word degree counters.
  ExactDegreeOracle exact_oracle(stream.num_nodes());
  auto exact = RunAlgorithm1WithOracle(stream, exact_oracle, options);
  if (!exact.ok()) return 1;
  std::printf("\nexact counters : %s\n", Summarize(exact->result).c_str());
  std::printf("  counter words: %llu (1 per node)\n",
              static_cast<unsigned long long>(exact->oracle_state_words));

  // Run 2: Count-Sketch counters at ~16%% of that memory (paper Table 4).
  CountSketchOptions sk;
  sk.tables = 5;
  sk.buckets = static_cast<int>(stream.num_nodes() * 0.16 / sk.tables);
  auto sketched = RunSketchedAlgorithm1(stream, sk, 77, options);
  if (!sketched.ok()) return 1;
  std::printf("\nsketch counters: %s\n", Summarize(sketched->result).c_str());
  std::printf("  counter words: %llu (t=%d x b=%d, %.0f%% of exact)\n",
              static_cast<unsigned long long>(sketched->oracle_state_words),
              sk.tables, sk.buckets, 100.0 * sketched->memory_ratio);
  std::printf("  quality ratio: %.3f\n",
              sketched->result.density / exact->result.density);

  std::printf("\nstream IO: %s\n", io_stats.ToString().c_str());
  std::printf("bytes read from disk: %.1f MiB across all passes\n",
              static_cast<double>((*file_stream)->bytes_read()) /
                  (1024.0 * 1024.0));
  std::remove(path.c_str());
  return 0;
}
