// Link-spam detection (paper application #3, after Gibson et al.): dense
// subgraphs of the web's link graph often correspond to link farms. This
// example plants a link farm (a set of spam pages all pointing at a few
// boosted targets) inside a directed web-like graph and uses the directed
// streaming algorithm (Algorithm 3 + c-search) to expose it.

#include <cmath>
#include <cstdio>
#include <set>

#include "densest.h"

int main() {
  using namespace densest;

  // Web-like background: R-MAT digraph (moderate skew; the heavy celebrity
  // cores of social graphs are rarer on the open web).
  RmatOptions rm;
  rm.scale = 15;  // 32768 pages
  rm.num_edges = 200000;
  rm.a = 0.5;
  rm.b = 0.2;
  rm.c = 0.2;
  rm.d = 0.1;
  rm.directed = true;
  EdgeList arcs = Rmat(rm, 1313);

  // The link farm: 400 spam pages each linking to most of 25 boosted
  // targets — the farm's (S,T) density dwarfs any organic community.
  PlantedDirectedGraph farm = PlantDirectedBlock(
      static_cast<NodeId>(1) << rm.scale, 0, /*s_size=*/400, /*t_size=*/25,
      /*p=*/0.9, 99);
  arcs.Append(farm.arcs);

  GraphBuilder builder;
  builder.ReserveNodes(arcs.num_nodes());
  for (const Edge& e : arcs.edges()) builder.Add(e.u, e.v);
  DirectedGraph graph = std::move(builder.BuildDirected()).value();
  std::printf("web graph: |V|=%u |E(arcs)|=%llu\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));
  std::printf("planted farm: 400 spam pages -> 25 targets (rho ~ %.1f)\n\n",
              0.9 * 400 * 25 / std::sqrt(400.0 * 25.0));

  // Search over the size ratio c in powers of 2, as in the paper §6.4.
  CSearchOptions options;
  options.delta = 2.0;
  options.epsilon = 0.5;
  StatusOr<CSearchResult> result = RunCSearch(graph, options);
  if (!result.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const DirectedDensestResult& best = result->best;
  std::printf("densest directed subgraph: %s\n", Summarize(best).c_str());

  // Score the catch: how much of the farm did we recover, and how pure is
  // the detection?
  std::set<NodeId> spam(farm.s_nodes.begin(), farm.s_nodes.end());
  std::set<NodeId> targets(farm.t_nodes.begin(), farm.t_nodes.end());
  size_t spam_hits = 0;
  for (NodeId u : best.s_nodes) spam_hits += spam.count(u);
  size_t target_hits = 0;
  for (NodeId u : best.t_nodes) target_hits += targets.count(u);

  std::printf("\ndetection quality:\n");
  std::printf("  spam pages recovered : %zu / %zu (precision %.0f%%)\n",
              spam_hits, spam.size(),
              best.s_nodes.empty()
                  ? 0.0
                  : 100.0 * spam_hits / best.s_nodes.size());
  std::printf("  boosted targets found: %zu / %zu\n", target_hits,
              targets.size());
  std::printf("  best size ratio c    : %.3g (farm's true ratio: %.1f)\n",
              best.c, 400.0 / 25.0);
  std::printf("\nflagging the returned S-side as spam candidates would be "
              "the ranking feature the paper describes.\n");
  return 0;
}
