// Quickstart: generate (or load) a graph, find its densest subgraph with
// the streaming algorithm, and compare against the exact optimum.
//
// Usage:
//   quickstart                 # runs on a built-in synthetic graph
//   quickstart edges.txt       # runs on a SNAP-style "u v" edge list

#include <cstdio>

#include "densest.h"

int main(int argc, char** argv) {
  using namespace densest;

  // 1. Get a graph: either from a file or a synthetic community graph.
  EdgeList edges;
  if (argc > 1) {
    StatusOr<EdgeList> loaded = ReadEdgeListText(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    edges = std::move(*loaded);
  } else {
    // Sparse background + one dense community of 40 nodes.
    PlantedGraph planted = PlantDenseBlocks(
        /*n=*/5000, /*background_edges=*/20000, {{40, 0.8}}, /*seed=*/42);
    edges = std::move(planted.edges);
    std::printf("generated synthetic graph with one planted community\n");
  }

  // 2. Build a cleaned CSR graph (dedup, drop self-loops).
  GraphBuilder builder;
  builder.ReserveNodes(edges.num_nodes());
  for (const Edge& e : edges.edges()) builder.Add(e.u, e.v, e.w);
  StatusOr<UndirectedGraph> graph = builder.BuildUndirected();
  if (!graph.ok()) {
    std::fprintf(stderr, "bad graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %s\n", FormatStats(ComputeStats(*graph)).c_str());

  // 3. Run the paper's streaming algorithm (Algorithm 1).
  Algorithm1Options options;
  options.epsilon = 0.5;  // (2 + 2*0.5) = 3-approximation worst case
  StatusOr<UndirectedDensestResult> result = RunAlgorithm1(*graph, options);
  if (!result.ok()) {
    std::fprintf(stderr, "algorithm failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("streaming result: %s\n", Summarize(*result).c_str());

  // 4. Certify with the exact max-flow solver (feasible at this scale).
  StatusOr<ExactDensestResult> exact = ExactDensestSubgraph(*graph);
  if (exact.ok()) {
    std::printf("exact optimum:    rho*=%.4f (|S*|=%zu)\n", exact->density,
                exact->nodes.size());
    std::printf("empirical approximation factor: %.4f  (guarantee: %.1f)\n",
                exact->density / result->density,
                2.0 + 2.0 * options.epsilon);
  }

  // 5. Show the first few members of the densest subgraph.
  std::printf("densest subgraph nodes (first 10):");
  for (size_t i = 0; i < result->nodes.size() && i < 10; ++i) {
    std::printf(" %u", result->nodes[i]);
  }
  std::printf("%s\n", result->nodes.size() > 10 ? " ..." : "");
  return 0;
}
