// Computational-biology module discovery (paper application #2, after
// Saha et al., RECOMB 2010): find dense functional modules in a
// gene-interaction graph, with a minimum-module-size restriction — the
// problem Algorithm 2 solves. Small modules (a single complex of 4 genes)
// can be uninterestingly dense; biologists ask for modules of at least k
// genes, which is exactly rho*_{>=k}.

#include <algorithm>
#include <cstdio>
#include <set>

#include "densest.h"

int main() {
  using namespace densest;

  // Synthetic gene-interaction network: 8000 genes, sparse background
  // interactome, three planted functional modules of different sizes and
  // cohesion, plus one tiny super-dense complex (6 genes, complete).
  const NodeId kGenes = 8000;
  EdgeList edges = ErdosRenyiGnm(kGenes, 24000, 808);
  PlantedGraph modules = PlantDenseBlocks(
      kGenes, 0, {{48, 0.55}, {30, 0.7}, {22, 0.8}, {6, 1.0}}, 17);
  edges.Append(modules.edges);

  GraphBuilder builder;
  builder.ReserveNodes(kGenes);
  for (const Edge& e : edges.edges()) builder.Add(e.u, e.v);
  UndirectedGraph graph = std::move(builder.BuildUndirected()).value();
  std::printf("interactome: %s\n", FormatStats(ComputeStats(graph)).c_str());
  std::printf("planted modules: 48@0.55 30@0.7 22@0.8, plus a 6-gene "
              "complete complex\n\n");

  // Without a size restriction the tiny complex dominates per-gene density
  // relative to its size class; with k = 20 we ask for *modules*, not
  // complexes.
  Algorithm1Options unrestricted;
  unrestricted.epsilon = 0.25;
  auto any_size = RunAlgorithm1(graph, unrestricted);
  if (!any_size.ok()) return 1;
  std::printf("unrestricted densest subgraph: %s\n",
              Summarize(*any_size).c_str());

  for (NodeId k : {20u, 35u, 60u}) {
    Algorithm2Options opt;
    opt.min_size = k;
    opt.epsilon = 0.25;
    auto module_result = RunAlgorithm2(graph, opt);
    if (!module_result.ok()) {
      std::fprintf(stderr, "k=%u failed: %s\n", k,
                   module_result.status().ToString().c_str());
      return 1;
    }

    // Which planted module does the answer overlap most?
    size_t best_block = 0, best_hits = 0;
    for (size_t b = 0; b < modules.blocks.size(); ++b) {
      std::set<NodeId> members(modules.blocks[b].begin(),
                               modules.blocks[b].end());
      size_t hits = 0;
      for (NodeId u : module_result->nodes) hits += members.count(u);
      if (hits > best_hits) {
        best_hits = hits;
        best_block = b;
      }
    }
    std::printf("k=%-3u -> %s  (overlaps planted module %zu on %zu genes)\n",
                k, Summarize(*module_result).c_str(), best_block + 1,
                best_hits);
  }

  std::printf("\nNote how raising k steers the answer from the small dense "
              "complex toward the larger, biologically meaningful modules — "
              "the restriction of Khuller-Saha / Algorithm 2.\n");
  return 0;
}
